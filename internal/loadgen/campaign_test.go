package loadgen

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/obs"
)

// TestCampaignFatTree8Deterministic is the acceptance determinism test:
// the same campaign on FatTree(8) produces bit-identical PointResults —
// stream digests included — at sweep parallelism 1 and 8. Run under
// -race in CI.
func TestCampaignFatTree8Deterministic(t *testing.T) {
	run := func(parallel int) []PointOutcome {
		out, err := RunCampaign(context.Background(), CampaignConfig{
			K:           8,
			Rates:       []float64{2000, 8000},
			Shards:      []int{1, 4},
			Window:      40 * time.Millisecond,
			DropRate:    0.05,
			Churn:       ChurnSpec{JoinRate: 100, LeaveRate: 80, FlapRate: 40},
			Diurnal:     DiurnalSpec{Period: 20 * time.Millisecond, Trough: 0.3},
			RootSeed:    99,
			Parallelism: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	if len(seq) != 4 || len(par) != 4 {
		t.Fatalf("campaign returned %d/%d points, want 4", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Point != par[i].Point || seq[i].Seed != par[i].Seed {
			t.Fatalf("point %d identity diverged: %+v vs %+v", i, seq[i].Point, par[i].Point)
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Fatalf("point %d result diverged between parallelism 1 and 8:\n%+v\n%+v",
				i, seq[i].Result, par[i].Result)
		}
	}
	// Same rate at different shard widths must see the identical event
	// stream: the plane width cannot reach back into generation.
	if seq[0].Result.Digest != seq[1].Result.Digest {
		t.Fatalf("shard width changed the event stream: %x vs %x",
			seq[0].Result.Digest, seq[1].Result.Digest)
	}
	for i, o := range seq {
		r := o.Result
		if r.Triggers == 0 || r.Decided == 0 {
			t.Fatalf("point %d decided nothing: %+v", i, r)
		}
		if r.Decided < r.Triggers*9/10 {
			t.Fatalf("point %d decided %d of %d triggers", i, r.Decided, r.Triggers)
		}
		if r.Faults == 0 {
			t.Fatalf("point %d: 5%% primary drop produced no omission alarms", i)
		}
		if r.FPRate <= 0 || r.FPRate > 0.2 {
			t.Fatalf("point %d FP rate %v outside (0, 0.2]", i, r.FPRate)
		}
		if r.P95 <= 0 {
			t.Fatalf("point %d p95 detection = %v", i, r.P95)
		}
	}
	// Wider planes divide the bottleneck: partition_x at 4 shards must
	// beat 1 shard for the same rate.
	if seq[1].Result.PartitionX <= seq[0].Result.PartitionX {
		t.Fatalf("partition_x did not improve with shards: %v (1) vs %v (4)",
			seq[0].Result.PartitionX, seq[1].Result.PartitionX)
	}
}

// TestCampaignOversubscribedHosts runs the virtual-population path: 2^24
// hosts on a 128-port FatTree(8), indices wrapping onto physical edge
// ports, without materializing anything.
func TestCampaignOversubscribedHosts(t *testing.T) {
	out, err := RunCampaign(context.Background(), CampaignConfig{
		K:        8,
		Hosts:    1 << 24,
		Rates:    []float64{5000},
		Shards:   []int{2},
		Window:   20 * time.Millisecond,
		RootSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := out[0].Result
	if r.Triggers == 0 || r.Decided != r.Triggers {
		t.Fatalf("oversubscribed point: %+v", r)
	}
	if r.Faults != 0 {
		t.Fatalf("clean campaign raised %d alarms", r.Faults)
	}
}

// TestCampaignSmoke1kSwitches is the ≥1k-switch acceptance smoke:
// FatTree(30) is 1125 switches / 3375 hosts; one brief point must
// stream, validate and decide.
func TestCampaignSmoke1kSwitches(t *testing.T) {
	out, err := RunCampaign(context.Background(), CampaignConfig{
		K:        30,
		Rates:    []float64{4000},
		Shards:   []int{4},
		Window:   10 * time.Millisecond,
		RootSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := out[0].Result
	if r.Triggers == 0 || r.Decided == 0 {
		t.Fatalf("1k-switch smoke decided nothing: %+v", r)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(context.Background(), CampaignConfig{K: 8}); err == nil {
		t.Fatal("empty rate/shard lists accepted")
	}
	if _, err := RunCampaign(context.Background(), CampaignConfig{
		K: 7, Rates: []float64{100}, Shards: []int{1},
	}); err == nil {
		t.Fatal("odd fat-tree arity accepted")
	}
}

// BenchmarkSourceNext is the generator hot path: events/s of synthesis
// with zero steady-state allocations.
func BenchmarkSourceNext(b *testing.B) {
	s := mustSource(b, Config{
		Hosts: 1 << 24, Links: 4096, MeanRate: 1e6, Seed: 7,
		Churn: ChurnSpec{JoinRate: 1e3, LeaveRate: 1e3, FlapRate: 500},
	})
	for i := 0; i < 10000; i++ {
		s.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

// TestCampaignSeriesTelemetry asserts the campaign time series samples
// the validator aggregates at Sync barriers: rows at every SeriesEvery
// boundary, monotone aggregate columns, and deterministic validator
// aggregates across sweep parallelism (per-shard queue hwm is a
// wall-clock diagnostic and is excluded from the determinism check).
func TestCampaignSeriesTelemetry(t *testing.T) {
	collect := func(parallel int) map[CampaignPoint]*obs.Series {
		var mu sync.Mutex
		got := map[CampaignPoint]*obs.Series{}
		_, err := RunCampaign(context.Background(), CampaignConfig{
			K:           8,
			Rates:       []float64{2000},
			Shards:      []int{2},
			Window:      40 * time.Millisecond,
			DropRate:    0.05,
			RootSeed:    99,
			Parallelism: parallel,
			SeriesEvery: 10 * time.Millisecond,
			OnSeries: func(pt CampaignPoint, seed int64, s *obs.Series) {
				mu.Lock()
				got[pt] = s
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	series := collect(1)
	if len(series) != 1 {
		t.Fatalf("OnSeries fired for %d points, want 1", len(series))
	}
	var s *obs.Series
	for _, v := range series {
		s = v
	}
	// 40ms window at 10ms cadence: samples at 10, 20, 30, 40.
	if s.Len() != 4 {
		t.Fatalf("series has %d rows, want 4", s.Len())
	}
	cols := s.Columns()
	idx := map[string]int{}
	for i, c := range cols {
		idx[c] = i
	}
	for _, want := range []string{"events", "triggers", "decided", "valid", "pending",
		"shard0_decided", "shard1_decided", "shard0_queue_hwm"} {
		if _, ok := idx[want]; !ok {
			t.Fatalf("series columns %v missing %q", cols, want)
		}
	}
	rows := s.Rows()
	for i, row := range rows {
		if want := int64(10*time.Millisecond) * int64(i+1); row.AtNS != want {
			t.Fatalf("row %d sampled at %d, want %d", i, row.AtNS, want)
		}
		if i > 0 && row.V[idx["decided"]] < rows[i-1].V[idx["decided"]] {
			t.Fatalf("decided column not monotone at row %d", i)
		}
	}
	last := rows[len(rows)-1]
	if last.V[idx["decided"]] == 0 || last.V[idx["events"]] == 0 {
		t.Fatalf("final sample is empty: %v", last.V)
	}
	if last.V[idx["shard0_decided"]]+last.V[idx["shard1_decided"]] != last.V[idx["decided"]] {
		t.Fatalf("per-shard decided does not sum to aggregate: %v", last.V)
	}

	// Validator-aggregate columns are deterministic across parallelism.
	par := collect(8)
	var p *obs.Series
	for _, v := range par {
		p = v
	}
	deterministic := []string{"events", "triggers", "decided", "valid", "faults",
		"timeouts", "pending", "shard0_decided", "shard1_decided"}
	if p.Len() != s.Len() {
		t.Fatalf("row counts diverge across parallelism: %d vs %d", p.Len(), s.Len())
	}
	for i := range rows {
		for _, c := range deterministic {
			if a, b := rows[i].V[idx[c]], p.Rows()[i].V[idx[c]]; a != b {
				t.Fatalf("column %q diverges across parallelism at row %d: %v vs %v", c, i, a, b)
			}
		}
	}
}

// TestCampaignFlightDump asserts the campaign's per-point flight hook
// fires when the drop-injected workload raises alarms.
func TestCampaignFlightDump(t *testing.T) {
	var (
		mu    sync.Mutex
		dumps int
		last  []obs.Event
	)
	_, err := RunCampaign(context.Background(), CampaignConfig{
		K:          8,
		Rates:      []float64{2000},
		Shards:     []int{2},
		Window:     40 * time.Millisecond,
		DropRate:   0.05,
		RootSeed:   99,
		FlightRing: 256,
		OnFlightDump: func(pt CampaignPoint, reason string, events []obs.Event) {
			mu.Lock()
			dumps++
			last = events
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if dumps == 0 {
		t.Fatal("5% drop raised alarms but no flight dump fired")
	}
	if len(last) == 0 {
		t.Fatal("flight dump carried no events")
	}
	shards := map[int]bool{}
	for _, e := range last {
		shards[e.Shard] = true
	}
	if len(shards) < 2 {
		t.Fatalf("merged dump covers %d shards, want 2", len(shards))
	}
}
