package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestCampaignFatTree8Deterministic is the acceptance determinism test:
// the same campaign on FatTree(8) produces bit-identical PointResults —
// stream digests included — at sweep parallelism 1 and 8. Run under
// -race in CI.
func TestCampaignFatTree8Deterministic(t *testing.T) {
	run := func(parallel int) []PointOutcome {
		out, err := RunCampaign(context.Background(), CampaignConfig{
			K:           8,
			Rates:       []float64{2000, 8000},
			Shards:      []int{1, 4},
			Window:      40 * time.Millisecond,
			DropRate:    0.05,
			Churn:       ChurnSpec{JoinRate: 100, LeaveRate: 80, FlapRate: 40},
			Diurnal:     DiurnalSpec{Period: 20 * time.Millisecond, Trough: 0.3},
			RootSeed:    99,
			Parallelism: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	if len(seq) != 4 || len(par) != 4 {
		t.Fatalf("campaign returned %d/%d points, want 4", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Point != par[i].Point || seq[i].Seed != par[i].Seed {
			t.Fatalf("point %d identity diverged: %+v vs %+v", i, seq[i].Point, par[i].Point)
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Fatalf("point %d result diverged between parallelism 1 and 8:\n%+v\n%+v",
				i, seq[i].Result, par[i].Result)
		}
	}
	// Same rate at different shard widths must see the identical event
	// stream: the plane width cannot reach back into generation.
	if seq[0].Result.Digest != seq[1].Result.Digest {
		t.Fatalf("shard width changed the event stream: %x vs %x",
			seq[0].Result.Digest, seq[1].Result.Digest)
	}
	for i, o := range seq {
		r := o.Result
		if r.Triggers == 0 || r.Decided == 0 {
			t.Fatalf("point %d decided nothing: %+v", i, r)
		}
		if r.Decided < r.Triggers*9/10 {
			t.Fatalf("point %d decided %d of %d triggers", i, r.Decided, r.Triggers)
		}
		if r.Faults == 0 {
			t.Fatalf("point %d: 5%% primary drop produced no omission alarms", i)
		}
		if r.FPRate <= 0 || r.FPRate > 0.2 {
			t.Fatalf("point %d FP rate %v outside (0, 0.2]", i, r.FPRate)
		}
		if r.P95 <= 0 {
			t.Fatalf("point %d p95 detection = %v", i, r.P95)
		}
	}
	// Wider planes divide the bottleneck: partition_x at 4 shards must
	// beat 1 shard for the same rate.
	if seq[1].Result.PartitionX <= seq[0].Result.PartitionX {
		t.Fatalf("partition_x did not improve with shards: %v (1) vs %v (4)",
			seq[0].Result.PartitionX, seq[1].Result.PartitionX)
	}
}

// TestCampaignOversubscribedHosts runs the virtual-population path: 2^24
// hosts on a 128-port FatTree(8), indices wrapping onto physical edge
// ports, without materializing anything.
func TestCampaignOversubscribedHosts(t *testing.T) {
	out, err := RunCampaign(context.Background(), CampaignConfig{
		K:        8,
		Hosts:    1 << 24,
		Rates:    []float64{5000},
		Shards:   []int{2},
		Window:   20 * time.Millisecond,
		RootSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := out[0].Result
	if r.Triggers == 0 || r.Decided != r.Triggers {
		t.Fatalf("oversubscribed point: %+v", r)
	}
	if r.Faults != 0 {
		t.Fatalf("clean campaign raised %d alarms", r.Faults)
	}
}

// TestCampaignSmoke1kSwitches is the ≥1k-switch acceptance smoke:
// FatTree(30) is 1125 switches / 3375 hosts; one brief point must
// stream, validate and decide.
func TestCampaignSmoke1kSwitches(t *testing.T) {
	out, err := RunCampaign(context.Background(), CampaignConfig{
		K:        30,
		Rates:    []float64{4000},
		Shards:   []int{4},
		Window:   10 * time.Millisecond,
		RootSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := out[0].Result
	if r.Triggers == 0 || r.Decided == 0 {
		t.Fatalf("1k-switch smoke decided nothing: %+v", r)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(context.Background(), CampaignConfig{K: 8}); err == nil {
		t.Fatal("empty rate/shard lists accepted")
	}
	if _, err := RunCampaign(context.Background(), CampaignConfig{
		K: 7, Rates: []float64{100}, Shards: []int{1},
	}); err == nil {
		t.Fatal("odd fat-tree arity accepted")
	}
}

// BenchmarkSourceNext is the generator hot path: events/s of synthesis
// with zero steady-state allocations.
func BenchmarkSourceNext(b *testing.B) {
	s := mustSource(b, Config{
		Hosts: 1 << 24, Links: 4096, MeanRate: 1e6, Seed: 7,
		Churn: ChurnSpec{JoinRate: 1e3, LeaveRate: 1e3, FlapRate: 500},
	})
	for i := 0; i < 10000; i++ {
		s.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
