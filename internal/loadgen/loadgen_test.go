package loadgen

import (
	"math"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/simnet"
)

func mustSource(t testing.TB, cfg Config) *Source {
	t.Helper()
	s, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSourceDeterministicStream pins the core contract: the same Config
// replays the identical event sequence, and different seeds diverge.
func TestSourceDeterministicStream(t *testing.T) {
	cfg := Config{
		Hosts: 1 << 20, Links: 512, MeanRate: 5000, Seed: 42,
		Diurnal: DiurnalSpec{Period: 100 * time.Millisecond, Trough: 0.2},
		Churn:   ChurnSpec{JoinRate: 200, LeaveRate: 150, FlapRate: 50},
	}
	a, b := mustSource(t, cfg), mustSource(t, cfg)
	for i := 0; i < 20000; i++ {
		if ea, eb := a.Next(), b.Next(); ea != eb {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ea, eb)
		}
	}
	other := cfg
	other.Seed = 43
	c := mustSource(t, other)
	same := 0
	a2 := mustSource(t, cfg)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced the identical stream")
	}
}

// TestSourceStreamsIndependent pins per-stream seeding: disabling churn
// must not change the flow-arrival subsequence, because each stream owns
// a private RNG.
func TestSourceStreamsIndependent(t *testing.T) {
	base := Config{Hosts: 1 << 20, Links: 512, MeanRate: 5000, Seed: 7}
	churny := base
	churny.Churn = ChurnSpec{JoinRate: 500, LeaveRate: 500, FlapRate: 100}

	flows := func(s *Source, n int) []Event {
		var out []Event
		for len(out) < n {
			if ev := s.Next(); ev.Kind == FlowArrival {
				out = append(out, ev)
			}
		}
		return out
	}
	quiet := flows(mustSource(t, base), 500)
	noisy := flows(mustSource(t, churny), 500)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("flow %d perturbed by churn streams: %+v vs %+v", i, quiet[i], noisy[i])
		}
	}
}

// TestSourceTimeAdvances pins monotone non-decreasing timestamps with
// strictly increasing arrival times.
func TestSourceTimeAdvances(t *testing.T) {
	s := mustSource(t, Config{
		Hosts: 1024, Links: 64, MeanRate: 1e6, Seed: 3,
		Churn: ChurnSpec{JoinRate: 1000, LeaveRate: 1000, FlapRate: 1000},
	})
	var last time.Duration
	for i := 0; i < 50000; i++ {
		ev := s.Next()
		if ev.At < last {
			t.Fatalf("event %d went back in time: %v after %v", i, ev.At, last)
		}
		last = ev.At
	}
}

// TestSourceMemoryFlat is the O(active flows) acceptance test: after
// warmup, pulling events from a 2^24-host source allocates nothing per
// event — the host population never materializes.
func TestSourceMemoryFlat(t *testing.T) {
	s := mustSource(t, Config{
		Hosts: 1 << 24, Links: 4096, MeanRate: 1e5, Seed: 9,
		Churn:     ChurnSpec{JoinRate: 100, LeaveRate: 100, FlapRate: 20},
		MaxActive: 4096,
	})
	for i := 0; i < 20000; i++ {
		s.Next() // warm the heap to steady state
	}
	avg := testing.AllocsPerRun(5000, func() { s.Next() })
	if avg > 0.01 {
		t.Fatalf("steady-state Next allocates %.3f objects/event; want 0", avg)
	}
	if s.Active() > 4096 {
		t.Fatalf("active flows %d exceed MaxActive", s.Active())
	}
}

// TestSourceMemoryIndependentOfHosts pins that host population does not
// change the tracked state: two sources identical except for a 4096×
// host-count gap hold the same active-set size.
func TestSourceMemoryIndependentOfHosts(t *testing.T) {
	small := mustSource(t, Config{Hosts: 1 << 12, MeanRate: 5e4, Seed: 5})
	big := mustSource(t, Config{Hosts: 1 << 24, MeanRate: 5e4, Seed: 5})
	for i := 0; i < 30000; i++ {
		small.Next()
		big.Next()
	}
	// Same seed, same arrival/size streams: identical tracked-flow counts.
	if small.Active() != big.Active() {
		t.Fatalf("active = %d (2^12 hosts) vs %d (2^24 hosts); population leaked into state",
			small.Active(), big.Active())
	}
}

// TestSourceMaxActiveBound pins the overflow contract: arrivals past the
// bound still stream (the trigger path must saturate) but are counted
// untracked and never emit FlowEnd.
func TestSourceMaxActiveBound(t *testing.T) {
	s := mustSource(t, Config{Hosts: 1 << 16, MeanRate: 1e6, Seed: 11, MaxActive: 32})
	var arrivals, ends uint64
	for i := 0; i < 100000; i++ {
		switch s.Next().Kind {
		case FlowArrival:
			arrivals++
		case FlowEnd:
			ends++
		}
	}
	if s.Active() > 32 {
		t.Fatalf("active %d exceeds MaxActive 32", s.Active())
	}
	if s.Untracked() == 0 {
		t.Fatal("1e6 flows/s against MaxActive=32 never overflowed")
	}
	if arrivals != ends+uint64(s.Active())+s.Untracked() {
		t.Fatalf("flow accounting: %d arrivals != %d ends + %d active + %d untracked",
			arrivals, ends, s.Active(), s.Untracked())
	}
}

// TestSourceDiurnalRate pins the diurnal modulation: with a 0.1 trough,
// arrivals in the peak quarter-cycle outnumber the trough quarter by a
// wide margin.
func TestSourceDiurnalRate(t *testing.T) {
	period := 400 * time.Millisecond
	s := mustSource(t, Config{
		Hosts: 1 << 16, MeanRate: 2e4, Seed: 13,
		Diurnal: DiurnalSpec{Period: period, Trough: 0.1},
	})
	peak, trough := 0, 0
	for {
		ev := s.Next()
		if ev.At > period {
			break
		}
		if ev.Kind != FlowArrival {
			continue
		}
		phase := ev.At % period
		switch {
		case phase < period/8 || phase >= period-period/8:
			peak++
		case phase >= 3*period/8 && phase < 5*period/8:
			trough++
		}
	}
	if peak < 3*trough {
		t.Fatalf("diurnal modulation too weak: peak quarter %d vs trough quarter %d arrivals", peak, trough)
	}
}

// TestSourceHeavyTailSizes sanity-checks the lognormal size model: the
// mean far exceeds the median (elephants), and no flow dips below the
// 64-byte frame floor.
func TestSourceHeavyTailSizes(t *testing.T) {
	s := mustSource(t, Config{Hosts: 1 << 16, MeanRate: 1e4, Seed: 17})
	var sizes []float64
	for len(sizes) < 20000 {
		ev := s.Next()
		if ev.Kind != FlowArrival {
			continue
		}
		if ev.Bytes < 64 {
			t.Fatalf("flow below minimum frame: %d bytes", ev.Bytes)
		}
		sizes = append(sizes, float64(ev.Bytes))
	}
	var sum float64
	for _, v := range sizes {
		sum += v
	}
	mean := sum / float64(len(sizes))
	// Median of the defaults is exp(9.2) ≈ 9.9 kB; σ=1.5 puts the mean
	// at exp(9.2 + 1.125) ≈ 3.1× the median. Require a 2× gap.
	if med := (Lognormal{Mu: 9.2, Sigma: 1.5}).Median(); mean < 2*med {
		t.Fatalf("size distribution not heavy-tailed: mean %.0f vs median %.0f", mean, med)
	}
}

// TestSourceChurnStreams pins churn on/off behavior and the flap-index
// bound.
func TestSourceChurnStreams(t *testing.T) {
	quiet := mustSource(t, Config{Hosts: 1 << 16, MeanRate: 1e4, Seed: 19})
	for i := 0; i < 10000; i++ {
		if k := quiet.Next().Kind; k == HostJoin || k == HostLeave || k == LinkFlap {
			t.Fatalf("churn disabled but got %v", k)
		}
	}
	// FlapRate set but zero links: flaps stay disabled.
	noLinks := mustSource(t, Config{Hosts: 1 << 16, MeanRate: 1e4, Seed: 19,
		Churn: ChurnSpec{FlapRate: 1e4}})
	for i := 0; i < 10000; i++ {
		if got := noLinks.Next().Kind; got == LinkFlap {
			t.Fatal("flaps emitted with zero links")
		}
	}
	noisy := mustSource(t, Config{Hosts: 1 << 16, Links: 7, MeanRate: 1e4, Seed: 19,
		Churn: ChurnSpec{JoinRate: 5e3, LeaveRate: 5e3, FlapRate: 5e3}})
	seen := map[EventKind]int{}
	for i := 0; i < 20000; i++ {
		ev := noisy.Next()
		seen[ev.Kind]++
		switch ev.Kind {
		case LinkFlap:
			if ev.Link < 0 || ev.Link >= 7 {
				t.Fatalf("flap link %d out of range", ev.Link)
			}
		case HostJoin, HostLeave:
			if ev.Src < 1 || ev.Src > 1<<16 {
				t.Fatalf("churn host %d out of range", ev.Src)
			}
		}
	}
	for _, k := range []EventKind{FlowArrival, HostJoin, HostLeave, LinkFlap} {
		if seen[k] == 0 {
			t.Fatalf("stream never emitted %v (saw %v)", k, seen)
		}
	}
}

// TestSourceMetrics pins the jury_loadgen_* families: per-kind counters
// sum to Generated, the active gauge matches Active, and untracked
// overflow is counted.
func TestSourceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustSource(t, Config{
		Hosts: 1 << 16, Links: 16, MeanRate: 1e5, Seed: 23, MaxActive: 64,
		Churn:   ChurnSpec{JoinRate: 1e3, LeaveRate: 1e3, FlapRate: 1e3},
		Metrics: reg,
	})
	for i := 0; i < 50000; i++ {
		s.Next()
	}
	var total int64
	for k := range kindNames {
		total += s.events[k].Value()
	}
	if uint64(total) != s.Generated() {
		t.Fatalf("kind counters sum to %d, generated %d", total, s.Generated())
	}
	if got := int(s.activeG.Value()); got != s.Active() {
		t.Fatalf("active gauge %d != Active() %d", got, s.Active())
	}
	if uint64(s.untrackedC.Value()) != s.Untracked() {
		t.Fatalf("untracked counter %d != Untracked() %d", s.untrackedC.Value(), s.Untracked())
	}
}

// TestDriveLazyScheduling pins the lazy-synthesis contract: driving a
// high-rate source through an engine keeps at most one generator event
// pending — the queue never buffers the stream.
func TestDriveLazyScheduling(t *testing.T) {
	eng := simnet.NewEngine(1)
	s := mustSource(t, Config{Hosts: 1 << 20, MeanRate: 1e6, Seed: 29})
	var delivered int
	var maxPending int
	s.Drive(eng, 50*time.Millisecond, func(ev Event) {
		delivered++
		if p := eng.Pending(); p > maxPending {
			maxPending = p
		}
	})
	if err := eng.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if delivered < 10000 {
		t.Fatalf("only %d events delivered at 1e6/s over 50ms", delivered)
	}
	if maxPending > 1 {
		t.Fatalf("engine buffered %d generator events; lazy contract is ≤ 1", maxPending)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events left pending past the horizon", eng.Pending())
	}
	// Event times seen by the engine match the virtual clock exactly.
	eng2 := simnet.NewEngine(1)
	s2 := mustSource(t, Config{Hosts: 1 << 20, MeanRate: 1e6, Seed: 29})
	ok := true
	s2.Drive(eng2, time.Millisecond, func(ev Event) { ok = ok && ev.At == eng2.Now() })
	if err := eng2.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivered event timestamps diverge from the engine clock")
	}
}

func TestNewSourceValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero hosts":    {MeanRate: 100},
		"one host":      {Hosts: 1, MeanRate: 100},
		"zero rate":     {Hosts: 10},
		"negative rate": {Hosts: 10, MeanRate: -5},
		"alpha at one":  {Hosts: 10, MeanRate: 100, ArrivalAlpha: 1},
	} {
		if _, err := NewSource(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestDiurnalFactor(t *testing.T) {
	d := DiurnalSpec{Period: time.Hour, Trough: 0.25}
	if f := d.Factor(0); math.Abs(f-1) > 1e-9 {
		t.Fatalf("peak factor = %v, want 1", f)
	}
	if f := d.Factor(30 * time.Minute); math.Abs(f-0.25) > 1e-9 {
		t.Fatalf("trough factor = %v, want 0.25", f)
	}
	if f := (DiurnalSpec{}).Factor(17 * time.Minute); f != 1 {
		t.Fatalf("disabled diurnal factor = %v, want 1", f)
	}
	// Out-of-range troughs clamp.
	if f := (DiurnalSpec{Period: time.Hour, Trough: -3}).Factor(30 * time.Minute); f != 0 {
		t.Fatalf("negative trough clamps to 0, got %v", f)
	}
	if f := (DiurnalSpec{Period: time.Hour, Trough: 9}).Factor(30 * time.Minute); math.Abs(f-1) > 1e-9 {
		t.Fatalf("trough > 1 clamps to 1, got %v", f)
	}
}

func TestParetoSampler(t *testing.T) {
	p := UnitPareto(1.5)
	if got := p.Mean(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("UnitPareto mean = %v, want 1", got)
	}
	if m := (Pareto{Alpha: 0.9, Min: 1}).Mean(); !math.IsInf(m, 1) {
		t.Fatalf("α ≤ 1 mean = %v, want +Inf", m)
	}
}
