package loadgen

import (
	"math"
	"time"
)

// DiurnalSpec modulates the flow arrival rate over the virtual day: the
// instantaneous rate is PeakRate scaled by a raised-cosine factor that
// bottoms out at Trough·PeakRate halfway through each Period. The zero
// value (Period == 0) disables modulation and holds the peak rate, which
// is what saturation benchmarks want.
type DiurnalSpec struct {
	// Period is the length of one diurnal cycle in virtual time.
	// Non-positive disables modulation (Factor is identically 1).
	Period time.Duration
	// Trough is the off-peak floor as a fraction of the peak rate,
	// clamped into [0, 1]. 0.1 means the quiet hours run at 10% load.
	Trough float64
}

// Factor returns the rate multiplier at virtual time t: 1 at t=0 (the
// cycle starts at peak), descending to the trough at Period/2 and back.
func (d DiurnalSpec) Factor(t time.Duration) float64 {
	if d.Period <= 0 {
		return 1
	}
	tr := d.Trough
	if tr < 0 {
		tr = 0
	} else if tr > 1 {
		tr = 1
	}
	phase := 2 * math.Pi * float64(t%d.Period) / float64(d.Period)
	// cos(0)=1 → factor 1; cos(π)=-1 → factor tr.
	return tr + (1-tr)*(1+math.Cos(phase))/2
}

// ChurnSpec drives the host-churn and link-flap point processes. Each is
// an independent exponential stream: a non-positive rate disables that
// stream entirely (no events, no state).
type ChurnSpec struct {
	// JoinRate is the host-join (discovery) rate in events per second of
	// virtual time.
	JoinRate float64
	// LeaveRate is the host-leave rate in events per second.
	LeaveRate float64
	// FlapRate is the link flap (port down/up pair) rate in events per
	// second.
	FlapRate float64
}
