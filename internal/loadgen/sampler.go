package loadgen

import (
	"math"
	"math/rand"
)

// Sampler draws positive variates from a caller-supplied deterministic
// RNG. Samplers are stateless values: all state lives in the *rand.Rand,
// so two streams with equal seeds replay identical variate sequences.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Pareto is the heavy-tailed Pareto(α, xm) distribution: P(X > x) =
// (xm/x)^α for x ≥ xm. Internet flow interarrivals and sizes are
// classically Pareto-ish; α ≤ 1 has infinite mean, 1 < α ≤ 2 infinite
// variance — the burstiness that distinguishes production load from the
// Poisson processes of internal/workload.
type Pareto struct {
	// Alpha is the shape (tail) parameter; smaller is heavier.
	Alpha float64
	// Min is the scale xm, the distribution's minimum value.
	Min float64
}

// Sample draws by inversion: xm · U^(-1/α) with U uniform on (0, 1].
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // (0, 1]: avoids the Inf at u=0
	return p.Min * math.Pow(u, -1/p.Alpha)
}

// Mean returns α·xm/(α−1), or +Inf when α ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Min / (p.Alpha - 1)
}

// UnitPareto returns a Pareto sampler with mean 1 and shape alpha
// (alpha > 1) — the interarrival kernel: gap = UnitPareto(α).Sample(r) /
// rate(t) gives heavy-tailed interarrivals whose long-run average tracks
// the instantaneous rate.
func UnitPareto(alpha float64) Pareto {
	return Pareto{Alpha: alpha, Min: (alpha - 1) / alpha}
}

// Lognormal is the log-normal distribution: exp(μ + σ·N(0,1)). Flow
// sizes in enterprise and datacenter traces fit a lognormal body with a
// Pareto tail; σ ≳ 1 already yields the mice-and-elephants mix where a
// tiny fraction of flows carries most bytes.
type Lognormal struct {
	Mu    float64 // log-scale location: the median is exp(Mu)
	Sigma float64 // log-scale shape
}

// Sample draws exp(μ + σ·z) with z standard normal.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Median returns exp(μ).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Constant is a degenerate sampler returning a fixed value — useful for
// pinning one axis of a model in tests.
type Constant float64

// Sample returns the constant.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }
