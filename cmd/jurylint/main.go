// Command jurylint runs the determinism & concurrency lint suite over the
// module containing the working directory. It is stdlib-only and fully
// offline: packages are parsed with go/parser and type-checked with
// go/types, resolving the standard library through the source importer.
//
// Usage:
//
//	jurylint [./...|import-path-suffix...]
//
// With no arguments (or `./...`) every package in the module is checked.
// Any other argument restricts output to packages whose import path ends
// with it. Exit status: 0 clean, 1 diagnostics reported, 2 load failure.
//
// Rules: wallclock, eventloop, guardedby, errcrit — see DESIGN.md
// "Determinism contract & lint rules". Suppress a deliberate violation
// with `//jurylint:allow <rule> -- justification`.
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/jurysdn/jury/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, args)
	diags := analysis.RunAnalyzers(pkgs, analysis.DefaultSuite(modPath))
	if len(diags) == 0 {
		return 0
	}
	fmt.Print(analysis.Format(root, diags))
	fmt.Fprintf(os.Stderr, "jurylint: %d violation(s)\n", len(diags))
	return 1
}

// filterPackages applies command-line patterns: `./...` (or nothing)
// keeps everything, anything else matches import-path suffixes.
func filterPackages(pkgs []*analysis.Package, args []string) []*analysis.Package {
	var patterns []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			return pkgs
		}
		patterns = append(patterns, strings.TrimSuffix(strings.TrimPrefix(a, "./"), "/..."))
	}
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if p.Path == pat || strings.HasSuffix(p.Path, "/"+pat) || strings.Contains(p.Path, "/"+pat+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
