// Command jurylint runs the determinism & concurrency lint suite over the
// module containing the working directory. It is stdlib-only and fully
// offline: packages are parsed with go/parser and type-checked with
// go/types, resolving the standard library through the source importer.
//
// Usage:
//
//	jurylint [-timing] [./...|import-path-suffix...]
//
// With no arguments (or `./...`) every package in the module is checked.
// Any other argument restricts output to packages whose import path ends
// with it. -timing runs the suite one analyzer at a time and prints each
// analyzer's wall time to stderr (diagnostics merge back into canonical
// order, so output is identical either way). Exit status: 0 clean, 1
// diagnostics reported, 2 load failure.
//
// Rules: wallclock, eventloop, guardedby, errcrit, maprange, vclockleak,
// errcritsync — see DESIGN.md "Determinism contract & lint rules".
// Suppress a deliberate violation with
// `//jurylint:allow <rule> -- justification`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/jurysdn/jury/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("jurylint", flag.ContinueOnError)
	timing := fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jurylint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, fs.Args())
	suite := analysis.DefaultSuite(modPath)
	var diags []analysis.Diagnostic
	if *timing {
		diags = runTimed(pkgs, suite)
	} else {
		diags = analysis.RunAnalyzers(pkgs, suite)
	}
	if len(diags) == 0 {
		return 0
	}
	fmt.Print(analysis.Format(root, diags))
	fmt.Fprintf(os.Stderr, "jurylint: %d violation(s)\n", len(diags))
	return 1
}

// runTimed runs the suite one analyzer at a time, printing each
// analyzer's wall time to stderr, and merges the diagnostics back into
// the canonical position-then-rule order, so -timing never changes the
// reported output — only adds the per-pass cost breakdown CI logs.
//
//jurylint:allow wallclock -- timing instrumentation for the lint driver itself
func runTimed(pkgs []*analysis.Package, suite []*analysis.Analyzer) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range suite {
		start := time.Now()
		diags = append(diags, analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})...)
		fmt.Fprintf(os.Stderr, "jurylint: %-12s %7.1f ms\n",
			a.Name, float64(time.Since(start).Microseconds())/1000)
	}
	analysis.SortDiagnostics(diags)
	return diags
}

// filterPackages applies command-line patterns: `./...` (or nothing)
// keeps everything, anything else matches import-path suffixes.
func filterPackages(pkgs []*analysis.Package, args []string) []*analysis.Package {
	var patterns []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			return pkgs
		}
		patterns = append(patterns, strings.TrimSuffix(strings.TrimPrefix(a, "./"), "/..."))
	}
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if p.Path == pat || strings.HasSuffix(p.Path, "/"+pat) || strings.Contains(p.Path, "/"+pat+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
