// Command juryd runs JURY's out-of-band validator as a standalone network
// service (the separate validator host of Fig. 2). Controller modules
// connect over TCP and stream responses as JSON lines or length-prefixed
// binary frames (negotiated per connection by a one-byte handshake; see
// -codec); juryd pushes every validation result (or only alarms, with
// -alarms-only) back to all connected clients and logs them.
//
// Usage:
//
//	juryd -listen :9090 -k 6 -members 7 -timeout 130ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:9090", "address to listen on")
		k          = flag.Int("k", 6, "replication factor (number of secondary controllers)")
		members    = flag.Int("members", 7, "number of controllers in the cluster")
		switches   = flag.Int("switches", 24, "number of switches in the deployment")
		timeout    = flag.Duration("timeout", 130*time.Millisecond, "validation timeout θτ")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive (EWMA) validation deadline")
		shards     = flag.Int("shards", 1, "validator shard count: >1 runs the parallel per-taint shard plane")
		queueDepth = flag.Int("queue-depth", 0, "per-shard intake queue bound (0 = default; full queues backpressure, never drop)")
		alarmsOnly = flag.Bool("alarms-only", false, "push only fault results to clients")
		codecName  = flag.String("codec", "auto", "wire codec stance: auto (mirror each client's first byte), json (refuse binary handshakes), or binary")
		statsEvery = flag.Duration("stats-every", 10*time.Second, "period for logging aggregate stats (0 = off)")
		metricsAt  = flag.String("metrics", "", "serve Prometheus /metrics and /healthz on this address (e.g. 127.0.0.1:9091; empty = off)")

		maxLine   = flag.Int("max-line-bytes", wire.DefaultMaxLineBytes, "max protocol line size; oversized lines are rejected and counted, not fatal")
		heartbeat = flag.Duration("heartbeat-every", wire.DefaultHeartbeatEvery, "ping idle client connections this often (negative = off)")
		idle      = flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "reap connections idle past this horizon (negative = off)")

		flightRing = flag.Int("flight-ring", 0, "flight-recorder ring capacity: retain the last N trigger lifecycle events per shard (0 = off)")
		flightDump = flag.String("flight-dump", "", "write flight dumps (JSONL) to this path: on every alarm, and a final dump at shutdown")
		traceOut   = flag.String("trace-out", "", "write the validator's span trace (JSONL, obs.Stitch input) to this path at shutdown; single-shard only")
	)
	flag.Parse()

	if *flightDump != "" && *flightRing == 0 {
		*flightRing = obs.DefaultFlightRing
	}
	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		return fmt.Errorf("juryd: %w", err)
	}
	svcCfg := jury.ValidatorServiceConfig{
		ClusterSize:       *members,
		K:                 *k,
		Switches:          *switches,
		ValidationTimeout: *timeout,
		AdaptiveTimeout:   *adaptive,
		Shards:            *shards,
		QueueDepth:        *queueDepth,
		AlarmsOnly:        *alarmsOnly,
		Codec:             codec,
		Tracing:           *traceOut != "",
		FlightRing:        *flightRing,
		MaxLineBytes:      *maxLine,
		HeartbeatEvery:    *heartbeat,
		IdleTimeout:       *idle,
	}
	if *flightDump != "" {
		// Dump-on-alarm: each dump overwrites the file with the freshest
		// ring, so the path always holds the events leading up to the
		// latest alarm.
		path := *flightDump
		svcCfg.OnFlightDump = func(reason string, events []obs.Event) {
			if err := writeFlightDump(path, events); err != nil {
				log.Printf("juryd: flight dump (%s): %v", reason, err)
				return
			}
			log.Printf("juryd: flight dump (%s): %d events -> %s", reason, len(events), path)
		}
	}
	srv, err := jury.ServeValidator(*listen, svcCfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("juryd: validating on %s (k=%d, n=%d, timeout=%v, shards=%d, codec=%s)", srv.Addr(), *k, *members, *timeout, *shards, codec)

	if *metricsAt != "" {
		expo, err := obs.ServeExpo(*metricsAt, obs.ExpoConfig{Write: srv.WriteMetrics})
		if err != nil {
			return fmt.Errorf("juryd: metrics endpoint: %w", err)
		}
		defer expo.Close()
		log.Printf("juryd: metrics on http://%s/metrics", expo.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery) //jurylint:allow wallclock -- live stats cadence is real time by definition
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			st := srv.Stats()
			fmt.Printf("juryd: shutting down — %d decided, %d valid, %d alarms, %d timeouts\n",
				st.Decided, st.Valid, st.Faults, st.Timeouts)
			if *flightDump != "" {
				if events := srv.FlightSnapshot(); len(events) > 0 {
					if err := writeFlightDump(*flightDump, events); err != nil {
						log.Printf("juryd: final flight dump: %v", err)
					} else {
						log.Printf("juryd: final flight dump: %d events -> %s", len(events), *flightDump)
					}
				}
			}
			if *traceOut != "" {
				if err := writeTrace(srv, *traceOut); err != nil {
					log.Printf("juryd: trace: %v", err)
				} else {
					log.Printf("juryd: trace -> %s", *traceOut)
					for origin, shift := range srv.TraceOrigins() {
						log.Printf("juryd: stitch shift for origin %q: %d ns", origin, shift)
					}
				}
			}
			return nil
		case <-tick:
			st := srv.Stats()
			log.Printf("juryd: decided=%d valid=%d alarms=%d timeouts=%d pending=%d",
				st.Decided, st.Valid, st.Faults, st.Timeouts, st.Pending)
		}
	}
}

// writeFlightDump writes one flight snapshot to path, atomically enough
// for a diagnostic file: full rewrite per dump.
func writeFlightDump(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the service's span trace as JSONL for stitching.
func writeTrace(srv *wire.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.WriteTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
