// Command benchwire benchmarks the two wire codecs head to head over a
// real TCP loopback socket and emits a machine-readable comparison
// (BENCH_wire.json via make bench-wire).
//
// Both codecs move the identical seeded workload through the same
// harness in one run: a sink goroutine accepts the connection, mirrors
// the sender's codec off the first byte exactly like wire.Server, fully
// decodes every envelope, and echoes the end-of-run marker back so the
// measured interval covers encode + socket + decode, not just the send
// side. The JSON leg encodes one envelope per write (what the original
// line protocol does); the binary leg coalesces frames into batched
// writes (what wire.Client does with -codec binary). A second phase
// measures single-envelope echo round-trips per codec and reports
// p50/p99, so the throughput win is shown at latency parity rather than
// bought with batching delay.
//
// Usage:
//
//	benchwire -n 100000 -rtt 2000 -out BENCH_wire.json -min-ratio 5
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/wire"
)

// row is one codec's measured results. Every field is a plain number:
// durations are converted to int64 nanoseconds at the measurement
// boundary so the document carries no virtual-time values.
type row struct {
	Codec            string  `json:"codec"`
	Envelopes        int64   `json:"envelopes"`
	Bytes            int64   `json:"bytes"`
	BytesPerEnvelope float64 `json:"bytes_per_envelope"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	EnvelopesPerSec  float64 `json:"envelopes_per_sec"`
	NSPerEnvelope    float64 `json:"ns_per_envelope"`
	RTTp50NS         int64   `json:"rtt_p50_ns"`
	RTTp99NS         int64   `json:"rtt_p99_ns"`
}

// document is the BENCH_wire.json schema.
type document struct {
	Format    string `json:"format"` // "wire-codec-bench"
	Goos      string `json:"goos"`
	Goarch    string `json:"goarch"`
	CPU       int    `json:"cpu"`
	Envelopes int64  `json:"envelopes"`
	Batch     int    `json:"batch"`
	Seed      int64  `json:"seed"`
	Rows      []row  `json:"rows"`
	// Ratio is binary envelopes/sec over JSON envelopes/sec — the
	// headline the bench exists to defend (target: >= 5).
	Ratio float64 `json:"ratio_envelopes_per_sec"`
	// RTTp99Ratio is binary p99 over JSON p99 — parity means <= ~1.
	RTTp99Ratio float64 `json:"rtt_p99_ratio"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 100000, "envelopes per throughput leg")
		rttN     = flag.Int("rtt", 2000, "echo round-trips per latency leg")
		batch    = flag.Int("batch", 64, "binary frames coalesced per write (the client's MaxBatch)")
		seed     = flag.Int64("seed", 42, "workload seed")
		maxFrame = flag.Int("max-frame", wire.DefaultMaxLineBytes, "reader-side frame/line cap")
		out      = flag.String("out", "", "also write the JSON document to this path")
		minRatio = flag.Float64("min-ratio", 5, "fail unless binary/json envelopes-per-sec ratio reaches this (0 = report only)")
		maxP99x  = flag.Float64("max-p99x", 3, "fail if binary RTT p99 exceeds json p99 by this factor (0 = report only)")
	)
	flag.Parse()
	if *n <= 0 || *rttN <= 0 || *batch <= 0 {
		return fmt.Errorf("benchwire: -n, -rtt and -batch must be positive")
	}

	envs := makeWorkload(*seed)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	sinkErr := make(chan error, 1)
	go func() { sinkErr <- sink(ln, 2, *maxFrame) }()

	doc := document{
		Format:    "wire-codec-bench",
		Goos:      runtime.GOOS,
		Goarch:    runtime.GOARCH,
		CPU:       runtime.NumCPU(),
		Envelopes: int64(*n),
		Batch:     *batch,
		Seed:      *seed,
	}
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		r, err := benchCodec(ln.Addr().String(), codec, envs, *n, *rttN, *batch, *maxFrame)
		if err != nil {
			return fmt.Errorf("benchwire: %s leg: %w", codec, err)
		}
		doc.Rows = append(doc.Rows, r)
	}
	if err := <-sinkErr; err != nil {
		return fmt.Errorf("benchwire: sink: %w", err)
	}

	jsonRow, binRow := doc.Rows[0], doc.Rows[1]
	doc.Ratio = binRow.EnvelopesPerSec / jsonRow.EnvelopesPerSec
	if jsonRow.RTTp99NS > 0 {
		doc.RTTp99Ratio = float64(binRow.RTTp99NS) / float64(jsonRow.RTTp99NS)
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if _, err := os.Stdout.Write(blob); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	}

	if *minRatio > 0 && doc.Ratio < *minRatio {
		return fmt.Errorf("benchwire: binary/json throughput ratio %.2f below -min-ratio %.2f", doc.Ratio, *minRatio)
	}
	if *maxP99x > 0 && doc.RTTp99Ratio > *maxP99x {
		return fmt.Errorf("benchwire: binary RTT p99 is %.2fx json (cap -max-p99x %.2f)", doc.RTTp99Ratio, *maxP99x)
	}
	return nil
}

// workloadPool is how many distinct envelopes the generator builds; the
// throughput leg cycles through them so the encode path sees varied
// strings without the bench holding -n envelopes in memory.
const workloadPool = 4096

// makeWorkload builds the seeded envelope mix both legs replay: mostly
// tainted cache writes (the replicated-execution hot path), a slice of
// southbound network writes, and the occasional primary response — the
// same shape juryload streams at a live validator.
func makeWorkload(seed int64) []wire.Envelope {
	rng := rand.New(rand.NewSource(seed))
	envs := make([]wire.Envelope, workloadPool)
	for i := range envs {
		r := &core.Response{
			Controller:   store.NodeID(rng.Intn(7)),
			Trigger:      trigger.ID(fmt.Sprintf("w-%d", i/8)),
			Kind:         core.SecondaryExec,
			Tainted:      true,
			Primary:      store.NodeID(rng.Intn(7)),
			Cache:        store.FlowsDB,
			Op:           store.OpUpdate,
			Key:          fmt.Sprintf("flow/h%d>h%d", rng.Intn(512), rng.Intn(512)),
			Value:        fmt.Sprintf("fwd:p%d:prio%d", rng.Intn(48), rng.Intn(8)),
			StateDigest:  rng.Uint64(),
			StateApplied: uint64(i),
			Prev:         fmt.Sprintf("fwd:p%d:prio%d", rng.Intn(48), rng.Intn(8)),
			PrevOK:       i%3 != 0,
			At:           time.Duration(i) * 13 * time.Microsecond,
		}
		switch i % 8 {
		case 0: // the primary's own answer
			r.Kind = core.CacheUpdate
			r.Tainted = false
			r.Controller = r.Primary
		case 7: // southbound egress instead of a cache write
			r.Kind = core.NetworkWrite
			r.Cache = ""
			r.Op = 0
			r.Key = ""
			r.Value = ""
			r.DPID = topo.DPID(rng.Intn(24) + 1)
			r.MsgType = openflow.TypeFlowMod
			r.MsgBody = fmt.Sprintf("FLOW_MOD{dpid=%d match=h%d>h%d out=p%d}", r.DPID, rng.Intn(512), rng.Intn(512), rng.Intn(48))
			r.WireLen = 56 + rng.Intn(32)
		}
		envs[i] = wire.Envelope{Type: wire.TypeResponse, Response: r}
	}
	return envs
}

// sink accepts conns connections sequentially and serves each one:
// mirror the sender's codec off the first byte (exactly the server's
// handshake rule), fully decode every envelope, and echo TypeStats
// envelopes back as the end-of-run / round-trip marker.
func sink(ln net.Listener, conns, maxFrame int) error {
	for i := 0; i < conns; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		err = serveSink(conn, maxFrame)
		_ = conn.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func serveSink(conn net.Conn, maxFrame int) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		return err
	}
	if first[0] == wire.BinMagic {
		if _, err := br.Discard(1); err != nil {
			return err
		}
		return sinkBinary(conn, br, maxFrame)
	}
	return sinkJSON(conn, br, maxFrame)
}

func sinkBinary(conn net.Conn, br *bufio.Reader, maxFrame int) error {
	r := wire.NewBinReader(br, maxFrame)
	echo := make([]byte, 0, 4096)
	for {
		env, err := r.ReadEnvelope()
		if err != nil {
			if isEOF(err) {
				return nil
			}
			return err
		}
		if env.Type == wire.TypeStats {
			// env borrows from the reader; the echo is written before
			// the next ReadEnvelope, so the borrow never outlives it.
			echo = wire.AppendEnvelope(echo[:0], env)
			if _, err := conn.Write(echo); err != nil {
				return err
			}
		}
	}
}

func sinkJSON(conn net.Conn, br *bufio.Reader, maxFrame int) error {
	lr := wire.NewLineReader(br, maxFrame)
	enc := json.NewEncoder(conn)
	for {
		line, err := lr.ReadLine()
		if err != nil {
			if isEOF(err) {
				return nil
			}
			return err
		}
		var env wire.Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return err
		}
		if env.Type == wire.TypeStats {
			if err := enc.Encode(&env); err != nil {
				return err
			}
		}
	}
}

func isEOF(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return false
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}

// benchCodec runs one codec's throughput leg then its RTT leg on a
// fresh connection and returns the filled row.
func benchCodec(addr string, codec wire.Codec, envs []wire.Envelope, n, rttN, batch, maxFrame int) (row, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return row{}, err
	}
	defer conn.Close()

	elapsedNS, bytes, err := throughput(conn, codec, envs, n, batch, maxFrame)
	if err != nil {
		return row{}, err
	}
	samples, err := echoRTT(conn, codec, &envs[0], rttN, maxFrame)
	if err != nil {
		return row{}, err
	}

	r := row{
		Codec:            codec.String(),
		Envelopes:        int64(n),
		Bytes:            bytes,
		BytesPerEnvelope: float64(bytes) / float64(n),
		ElapsedNS:        elapsedNS,
		RTTp50NS:         percentileNS(samples, 50),
		RTTp99NS:         percentileNS(samples, 99),
	}
	if elapsedNS > 0 {
		r.EnvelopesPerSec = float64(n) / (float64(elapsedNS) / 1e9)
		r.NSPerEnvelope = float64(elapsedNS) / float64(n)
	}
	return r, nil
}

// throughput streams n envelopes and a TypeStats end-marker, then waits
// for the sink's echo of the marker: the sink decodes in order, so the
// echo bounds decode of everything before it. Returns wall nanoseconds
// and payload bytes written.
func throughput(conn net.Conn, codec wire.Codec, envs []wire.Envelope, n, batch, maxFrame int) (int64, int64, error) {
	marker := wire.Envelope{Type: wire.TypeStats, Stats: &wire.Stats{Decided: int64(n)}}
	var bytes int64

	start := time.Now() //jurylint:allow wallclock -- benchmark measurement boundary
	switch codec {
	case wire.CodecBinary:
		if _, err := conn.Write([]byte{wire.BinMagic}); err != nil {
			return 0, 0, err
		}
		bytes++
		buf := make([]byte, 0, 1<<16)
		for i := 0; i < n; i++ {
			buf = wire.AppendEnvelope(buf, &envs[i%len(envs)])
			if (i+1)%batch == 0 || i == n-1 {
				nw, err := conn.Write(buf)
				bytes += int64(nw)
				if err != nil {
					return 0, 0, err
				}
				buf = buf[:0]
			}
		}
		buf = wire.AppendEnvelope(buf[:0], &marker)
		nw, err := conn.Write(buf)
		bytes += int64(nw)
		if err != nil {
			return 0, 0, err
		}
		if _, err := readBinEcho(conn, maxFrame); err != nil {
			return 0, 0, err
		}
	default:
		cw := &countingWriter{w: conn}
		enc := json.NewEncoder(cw)
		for i := 0; i < n; i++ {
			if err := enc.Encode(&envs[i%len(envs)]); err != nil {
				return 0, 0, err
			}
		}
		if err := enc.Encode(&marker); err != nil {
			return 0, 0, err
		}
		bytes = cw.n
		if _, err := readJSONEcho(conn, maxFrame); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start) //jurylint:allow wallclock -- benchmark measurement boundary
	return elapsed.Nanoseconds(), bytes, nil
}

// echoRTT measures rttN single-envelope round trips: one stats envelope
// carrying a realistic response body out, the sink's full re-encode of
// it back. Latency parity between the codecs means batching has not
// bought throughput at the price of per-envelope delay.
func echoRTT(conn net.Conn, codec wire.Codec, payload *wire.Envelope, rttN, maxFrame int) ([]int64, error) {
	env := wire.Envelope{Type: wire.TypeStats, Stats: &wire.Stats{Decided: 1}, Response: payload.Response}
	samples := make([]int64, 0, rttN)

	switch codec {
	case wire.CodecBinary:
		buf := make([]byte, 0, 4096)
		br := bufio.NewReaderSize(conn, 1<<16)
		r := wire.NewBinReader(br, maxFrame)
		for i := 0; i < rttN; i++ {
			buf = wire.AppendEnvelope(buf[:0], &env)
			start := time.Now() //jurylint:allow wallclock -- benchmark measurement boundary
			if _, err := conn.Write(buf); err != nil {
				return nil, err
			}
			if _, err := r.ReadEnvelope(); err != nil {
				return nil, err
			}
			samples = append(samples, time.Since(start).Nanoseconds()) //jurylint:allow wallclock -- benchmark measurement boundary
		}
	default:
		enc := json.NewEncoder(conn)
		lr := wire.NewLineReader(bufio.NewReaderSize(conn, 1<<16), maxFrame)
		for i := 0; i < rttN; i++ {
			start := time.Now() //jurylint:allow wallclock -- benchmark measurement boundary
			if err := enc.Encode(&env); err != nil {
				return nil, err
			}
			if _, err := lr.ReadLine(); err != nil {
				return nil, err
			}
			samples = append(samples, time.Since(start).Nanoseconds()) //jurylint:allow wallclock -- benchmark measurement boundary
		}
	}
	return samples, nil
}

// readBinEcho reads one binary frame off conn (the echoed marker).
func readBinEcho(conn net.Conn, maxFrame int) (*wire.Envelope, error) {
	return wire.NewBinReader(bufio.NewReaderSize(conn, 4096), maxFrame).ReadEnvelope()
}

// readJSONEcho reads one JSON line off conn (the echoed marker).
func readJSONEcho(conn net.Conn, maxFrame int) (*wire.Envelope, error) {
	lr := wire.NewLineReader(bufio.NewReaderSize(conn, 4096), maxFrame)
	line, err := lr.ReadLine()
	if err != nil {
		return nil, err
	}
	var env wire.Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, err
	}
	return &env, nil
}

// percentileNS returns the p-th percentile of the samples, nearest-rank.
func percentileNS(samples []int64, p int) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// countingWriter counts payload bytes on the JSON leg.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
