// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for the repo's benchmark trajectory files
// (BENCH_*.json). The original text is preserved verbatim under "raw", so
// benchstat can always reconstruct its native input:
//
//	jq -r .raw BENCH_obs.json | benchstat /dev/stdin
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/obs | benchjson > BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark result line.
type benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"b_per_op,omitempty"`
	AllocsPer  float64 `json:"allocs_per_op,omitempty"`
	// Raw is the untouched result line, benchstat's unit of input.
	Raw string `json:"raw"`
}

// document is the BENCH_*.json schema.
type document struct {
	Format     string      `json:"format"` // "go-bench-text"
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        []string    `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
	// Raw is the full benchmark text, reconstructible benchstat input.
	Raw string `json:"raw"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("read input: %w", err)
	}
	doc := document{Format: "go-bench-text", Raw: string(raw)}
	sc := bufio.NewScanner(strings.NewReader(doc.Raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = append(doc.Pkg, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("scan input: %w", err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	return nil
}

// parseLine parses one "BenchmarkName-8  123  456 ns/op  789 B/op ..."
// result line; non-result lines (e.g. a benchmark's log output happening
// to start with "Benchmark") report ok=false.
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Raw: line}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPer = v
		}
	}
	return b, true
}
