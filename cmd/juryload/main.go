// Command juryload runs the scale campaign: it sweeps streaming-workload
// trigger rates against validation-plane shard widths on a Clos
// fat-tree fabric and prints one row per (rate, shards) point —
// detection-latency percentiles, false-positive rate, partition factor
// and estimated Submit capacity. The workload is synthesized lazily by
// internal/loadgen (heavy-tailed arrivals, host churn, link flaps), so
// host populations far beyond the fabric's physical ports cost nothing.
//
// Usage:
//
//	juryload -k 8 -rates 10000,100000,1000000 -shards 1,2,4,8 -window 200ms
//	juryload -smoke              # one brief point on a 1125-switch FatTree(30)
//	juryload -k 8 -hosts 16777216 -drop 0.001 -rates 50000 -shards 4
//
// Every row is deterministic for a given -seed (wall-clock columns
// aside): the same campaign at -parallel 1 and -parallel 8 prints the
// same digests and verdict counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/jurysdn/jury/internal/loadgen"
	"github.com/jurysdn/jury/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		k        = flag.Int("k", 8, "fat-tree arity (even): 5k²/4 switches, k³/4 hosts")
		hosts    = flag.Uint64("hosts", 0, "virtual host population (0 = the fabric's physical k³/4; larger values wrap onto edge ports)")
		rates    = flag.String("rates", "10000,100000,1000000,4000000", "comma-separated trigger rates to sweep (flows/s of virtual time)")
		shards   = flag.String("shards", "1,2,4,8", "comma-separated validation-plane widths to sweep")
		window   = flag.Duration("window", 100*time.Millisecond, "virtual measurement window per point")
		replicas = flag.Int("replicas", 2, "tainted secondary executions per trigger (validator k)")
		timeout  = flag.Duration("timeout", 20*time.Millisecond, "per-trigger validation deadline")
		drop     = flag.Float64("drop", 0.001, "probability a trigger's primary response is lost (benign false-positive source; 0 disables)")
		join     = flag.Float64("churn-join", 200, "host-join rate (events/s)")
		leave    = flag.Float64("churn-leave", 150, "host-leave rate (events/s)")
		flap     = flag.Float64("flap", 20, "link-flap rate (events/s)")
		diurnal  = flag.Duration("diurnal", 0, "diurnal load period (0 disables modulation)")
		trough   = flag.Float64("trough", 0.1, "diurnal trough as a fraction of the peak rate")
		seed     = flag.Int64("seed", 42, "campaign root seed")
		parallel = flag.Int("parallel", 0, "sweep parallelism (0 = GOMAXPROCS; results identical at any width)")
		smoke    = flag.Bool("smoke", false, "run the 1k-switch smoke instead: one brief point on FatTree(30)")

		seriesOut   = flag.String("series-out", "", "write per-point campaign time series (columnar JSONL) into this directory (empty = off)")
		seriesEvery = flag.Duration("series-every", 10*time.Millisecond, "virtual sampling period for -series-out")
		flightOut   = flag.String("flight-out", "", "write per-point flight dumps (JSONL) into this directory (empty = off)")
		flightRing  = flag.Int("flight-ring", 0, "per-shard flight-recorder capacity for -flight-out (0 = default ring)")
	)
	flag.Parse()

	cfg := loadgen.CampaignConfig{
		K:           *k,
		Hosts:       *hosts,
		Window:      *window,
		Replicas:    *replicas,
		Timeout:     *timeout,
		DropRate:    *drop,
		Churn:       loadgen.ChurnSpec{JoinRate: *join, LeaveRate: *leave, FlapRate: *flap},
		Diurnal:     loadgen.DiurnalSpec{Period: *diurnal, Trough: *trough},
		RootSeed:    *seed,
		Parallelism: *parallel,
	}
	var err error
	if cfg.Rates, err = parseFloats(*rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	if cfg.Shards, err = parseInts(*shards); err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	if *smoke {
		cfg.K = 30
		cfg.Rates = []float64{10000}
		cfg.Shards = []int{4}
		cfg.Window = 20 * time.Millisecond
	}

	// Telemetry sinks: hooks run on sweep worker goroutines, so the
	// path books are mutex-guarded. Each point gets its own file, named
	// by its (rate, shards) identity.
	var (
		teleMu      sync.Mutex
		seriesPaths = map[loadgen.CampaignPoint]string{}
		flightPaths = map[loadgen.CampaignPoint]string{}
	)
	if *seriesOut != "" {
		if err := os.MkdirAll(*seriesOut, 0o755); err != nil {
			return fmt.Errorf("-series-out: %w", err)
		}
		cfg.SeriesEvery = *seriesEvery
		cfg.OnSeries = func(pt loadgen.CampaignPoint, seed int64, s *obs.Series) {
			path := filepath.Join(*seriesOut, pointFile("series", pt))
			if err := writeSeries(path, s); err != nil {
				log.Printf("juryload: series %s: %v", path, err)
				return
			}
			teleMu.Lock()
			seriesPaths[pt] = path
			teleMu.Unlock()
		}
	}
	if *flightOut != "" {
		if err := os.MkdirAll(*flightOut, 0o755); err != nil {
			return fmt.Errorf("-flight-out: %w", err)
		}
		cfg.FlightRing = *flightRing
		if cfg.FlightRing == 0 {
			cfg.FlightRing = obs.DefaultFlightRing
		}
		cfg.OnFlightDump = func(pt loadgen.CampaignPoint, reason string, events []obs.Event) {
			// Later dumps overwrite earlier ones: the file always holds
			// the events leading up to the point's latest alarm.
			path := filepath.Join(*flightOut, pointFile("flight", pt))
			if err := writeFlight(path, events); err != nil {
				log.Printf("juryload: flight dump %s (%s): %v", path, reason, err)
				return
			}
			teleMu.Lock()
			flightPaths[pt] = path
			teleMu.Unlock()
		}
	}

	switches := 5 * cfg.K * cfg.K / 4
	physHosts := cfg.K * cfg.K * cfg.K / 4
	pop := cfg.Hosts
	if pop == 0 {
		pop = uint64(physHosts)
	}
	fmt.Printf("juryload: FatTree(%d) — %d switches, %d physical ports, %d virtual hosts; window %v, replicas %d, drop %g, seed %d\n\n",
		cfg.K, switches, physHosts, pop, cfg.Window, cfg.Replicas, cfg.DropRate, *seed)

	out, err := loadgen.RunCampaign(context.Background(), cfg)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tshards\tevents\ttriggers\tdecided\tvalid\talarms\ttimeouts\tfp_pct\tp50\tp95\tp99\tpartition_x\twall\tsubmit_per_s\tdigest\tseries\tflight")
	teleMu.Lock()
	defer teleMu.Unlock()
	for _, o := range out {
		r := o.Result
		series, flight := "-", "-"
		if p, ok := seriesPaths[o.Point]; ok {
			series = p
		}
		if p, ok := flightPaths[o.Point]; ok {
			flight = p
		}
		fmt.Fprintf(w, "%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%v\t%v\t%v\t%.2f\t%v\t%.0f\t%016x\t%s\t%s\n",
			o.Point.Rate, o.Point.Shards, r.Events, r.Triggers, r.Decided, r.Valid,
			r.Faults, r.Timeouts, r.FPRate*100, r.P50, r.P95, r.P99,
			r.PartitionX, o.Elapsed.Round(time.Millisecond),
			o.SubmitPerSec(cfg.Replicas+1), r.Digest, series, flight)
	}
	return w.Flush()
}

// pointFile names a point's telemetry file by its parameter identity.
func pointFile(kind string, pt loadgen.CampaignPoint) string {
	return fmt.Sprintf("%s-rate%.0f-shards%d.jsonl", kind, pt.Rate, pt.Shards)
}

func writeSeries(path string, s *obs.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeFlight(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
