// Command juryload runs the scale campaign: it sweeps streaming-workload
// trigger rates against validation-plane shard widths on a Clos
// fat-tree fabric and prints one row per (rate, shards) point —
// detection-latency percentiles, false-positive rate, partition factor
// and estimated Submit capacity. The workload is synthesized lazily by
// internal/loadgen (heavy-tailed arrivals, host churn, link flaps), so
// host populations far beyond the fabric's physical ports cost nothing.
//
// Usage:
//
//	juryload -k 8 -rates 10000,100000,1000000 -shards 1,2,4,8 -window 200ms
//	juryload -smoke              # one brief point on a 1125-switch FatTree(30)
//	juryload -k 8 -hosts 16777216 -drop 0.001 -rates 50000 -shards 4
//	juryload -wire 127.0.0.1:9090 -codec binary -rates 50000   # stream to a live juryd
//
// Every row is deterministic for a given -seed (wall-clock columns
// aside): the same campaign at -parallel 1 and -parallel 8 prints the
// same digests and verdict counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/loadgen"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		k        = flag.Int("k", 8, "fat-tree arity (even): 5k²/4 switches, k³/4 hosts")
		hosts    = flag.Uint64("hosts", 0, "virtual host population (0 = the fabric's physical k³/4; larger values wrap onto edge ports)")
		rates    = flag.String("rates", "10000,100000,1000000,4000000", "comma-separated trigger rates to sweep (flows/s of virtual time)")
		shards   = flag.String("shards", "1,2,4,8", "comma-separated validation-plane widths to sweep")
		window   = flag.Duration("window", 100*time.Millisecond, "virtual measurement window per point")
		replicas = flag.Int("replicas", 2, "tainted secondary executions per trigger (validator k)")
		timeout  = flag.Duration("timeout", 20*time.Millisecond, "per-trigger validation deadline")
		drop     = flag.Float64("drop", 0.001, "probability a trigger's primary response is lost (benign false-positive source; 0 disables)")
		join     = flag.Float64("churn-join", 200, "host-join rate (events/s)")
		leave    = flag.Float64("churn-leave", 150, "host-leave rate (events/s)")
		flap     = flag.Float64("flap", 20, "link-flap rate (events/s)")
		diurnal  = flag.Duration("diurnal", 0, "diurnal load period (0 disables modulation)")
		trough   = flag.Float64("trough", 0.1, "diurnal trough as a fraction of the peak rate")
		seed     = flag.Int64("seed", 42, "campaign root seed")
		parallel = flag.Int("parallel", 0, "sweep parallelism (0 = GOMAXPROCS; results identical at any width)")
		smoke    = flag.Bool("smoke", false, "run the 1k-switch smoke instead: one brief point on FatTree(30)")

		wireAt    = flag.String("wire", "", "stream the synthesized workload to a running juryd at this address over the wire client instead of validating in-process (uses the first -rates point and -window)")
		codecName = flag.String("codec", "json", "wire codec for -wire: json (newline-delimited) or binary (length-prefixed frames, batched writes)")

		seriesOut   = flag.String("series-out", "", "write per-point campaign time series (columnar JSONL) into this directory (empty = off)")
		seriesEvery = flag.Duration("series-every", 10*time.Millisecond, "virtual sampling period for -series-out")
		flightOut   = flag.String("flight-out", "", "write per-point flight dumps (JSONL) into this directory (empty = off)")
		flightRing  = flag.Int("flight-ring", 0, "per-shard flight-recorder capacity for -flight-out (0 = default ring)")
	)
	flag.Parse()

	cfg := loadgen.CampaignConfig{
		K:           *k,
		Hosts:       *hosts,
		Window:      *window,
		Replicas:    *replicas,
		Timeout:     *timeout,
		DropRate:    *drop,
		Churn:       loadgen.ChurnSpec{JoinRate: *join, LeaveRate: *leave, FlapRate: *flap},
		Diurnal:     loadgen.DiurnalSpec{Period: *diurnal, Trough: *trough},
		RootSeed:    *seed,
		Parallelism: *parallel,
	}
	var err error
	if cfg.Rates, err = parseFloats(*rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	if cfg.Shards, err = parseInts(*shards); err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	if *smoke {
		cfg.K = 30
		cfg.Rates = []float64{10000}
		cfg.Shards = []int{4}
		cfg.Window = 20 * time.Millisecond
	}
	if *wireAt != "" {
		codec, err := wire.ParseCodec(*codecName)
		if err != nil {
			return fmt.Errorf("-codec: %w", err)
		}
		return runWire(cfg, *wireAt, codec)
	}

	// Telemetry sinks: hooks run on sweep worker goroutines, so the
	// path books are mutex-guarded. Each point gets its own file, named
	// by its (rate, shards) identity.
	var (
		teleMu      sync.Mutex
		seriesPaths = map[loadgen.CampaignPoint]string{}
		flightPaths = map[loadgen.CampaignPoint]string{}
	)
	if *seriesOut != "" {
		if err := os.MkdirAll(*seriesOut, 0o755); err != nil {
			return fmt.Errorf("-series-out: %w", err)
		}
		cfg.SeriesEvery = *seriesEvery
		cfg.OnSeries = func(pt loadgen.CampaignPoint, seed int64, s *obs.Series) {
			path := filepath.Join(*seriesOut, pointFile("series", pt))
			if err := writeSeries(path, s); err != nil {
				log.Printf("juryload: series %s: %v", path, err)
				return
			}
			teleMu.Lock()
			seriesPaths[pt] = path
			teleMu.Unlock()
		}
	}
	if *flightOut != "" {
		if err := os.MkdirAll(*flightOut, 0o755); err != nil {
			return fmt.Errorf("-flight-out: %w", err)
		}
		cfg.FlightRing = *flightRing
		if cfg.FlightRing == 0 {
			cfg.FlightRing = obs.DefaultFlightRing
		}
		cfg.OnFlightDump = func(pt loadgen.CampaignPoint, reason string, events []obs.Event) {
			// Later dumps overwrite earlier ones: the file always holds
			// the events leading up to the point's latest alarm.
			path := filepath.Join(*flightOut, pointFile("flight", pt))
			if err := writeFlight(path, events); err != nil {
				log.Printf("juryload: flight dump %s (%s): %v", path, reason, err)
				return
			}
			teleMu.Lock()
			flightPaths[pt] = path
			teleMu.Unlock()
		}
	}

	switches := 5 * cfg.K * cfg.K / 4
	physHosts := cfg.K * cfg.K * cfg.K / 4
	pop := cfg.Hosts
	if pop == 0 {
		pop = uint64(physHosts)
	}
	fmt.Printf("juryload: FatTree(%d) — %d switches, %d physical ports, %d virtual hosts; window %v, replicas %d, drop %g, seed %d\n\n",
		cfg.K, switches, physHosts, pop, cfg.Window, cfg.Replicas, cfg.DropRate, *seed)

	out, err := loadgen.RunCampaign(context.Background(), cfg)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tshards\tevents\ttriggers\tdecided\tvalid\talarms\ttimeouts\tfp_pct\tp50\tp95\tp99\tpartition_x\twall\tsubmit_per_s\tdigest\tseries\tflight")
	teleMu.Lock()
	defer teleMu.Unlock()
	for _, o := range out {
		r := o.Result
		series, flight := "-", "-"
		if p, ok := seriesPaths[o.Point]; ok {
			series = p
		}
		if p, ok := flightPaths[o.Point]; ok {
			flight = p
		}
		fmt.Fprintf(w, "%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%v\t%v\t%v\t%.2f\t%v\t%.0f\t%016x\t%s\t%s\n",
			o.Point.Rate, o.Point.Shards, r.Events, r.Triggers, r.Decided, r.Valid,
			r.Faults, r.Timeouts, r.FPRate*100, r.P50, r.P95, r.P99,
			r.PartitionX, o.Elapsed.Round(time.Millisecond),
			o.SubmitPerSec(cfg.Replicas+1), r.Digest, series, flight)
	}
	return w.Flush()
}

// runWire streams one synthesized workload window to a remote juryd over
// the resilient wire client, replaying the same event-to-response mapping
// the in-process campaign uses (FlowArrival fans out into one primary
// cache write plus tainted secondary executions; churn and flaps become
// untainted cache updates). It reports the client's own loss accounting
// alongside the server's aggregate stats, so a codec or throughput
// regression on the wire path is visible end to end.
func runWire(cfg loadgen.CampaignConfig, addr string, codec wire.Codec) error {
	top, err := topo.FatTree(cfg.K)
	if err != nil {
		return err
	}
	hosts := cfg.Hosts
	if hosts == 0 {
		hosts = uint64(top.NumHosts())
	}
	links := top.Links()
	rate := cfg.Rates[0]
	src, err := loadgen.NewSource(loadgen.Config{
		Hosts:    hosts,
		Links:    len(links),
		MeanRate: rate,
		Diurnal:  cfg.Diurnal,
		Churn:    cfg.Churn,
		Seed:     cfg.RootSeed,
	})
	if err != nil {
		return err
	}

	n := cfg.Replicas + 1
	members := make([]store.NodeID, n)
	for i := range members {
		members[i] = store.NodeID(i + 1)
	}
	var (
		statsMu sync.Mutex
		stats   *wire.Stats
		results int64
	)
	c, err := wire.DialConfig(addr, wire.ClientConfig{
		Codec:     codec,
		QueueSize: 1 << 16,
		OnResult:  func(core.Result) { statsMu.Lock(); results++; statsMu.Unlock() },
		OnStats:   func(st wire.Stats) { statsMu.Lock(); stats = &st; statsMu.Unlock() },
	})
	if err != nil {
		return fmt.Errorf("juryload: wire sink: %w", err)
	}
	defer c.Close()

	drop := rand.New(rand.NewSource(cfg.RootSeed + 1))
	fmt.Printf("juryload: streaming FatTree(%d) workload to %s (codec=%s, rate=%.0f/s, window=%v, replicas=%d)\n",
		cfg.K, addr, codec, rate, cfg.Window, cfg.Replicas)
	start := time.Now() //jurylint:allow wallclock -- wire throughput is measured in wall time
	var events, envelopes, triggers int64
	for {
		ev := src.Next()
		if ev.At > cfg.Window {
			break
		}
		events++
		switch ev.Kind {
		case loadgen.FlowArrival:
			triggers++
			tid := trigger.ID(fmt.Sprintf("w-%d", triggers))
			primary := members[ev.Src%uint64(n)]
			key := fmt.Sprintf("flow/%d>%d", ev.Src, ev.Dst)
			if cfg.DropRate <= 0 || drop.Float64() >= cfg.DropRate {
				envelopes++
				err := c.Send(core.Response{
					Controller: primary, Primary: primary, Trigger: tid,
					Kind: core.CacheUpdate, Tainted: false,
					Cache: store.FlowsDB, Op: store.OpCreate,
					Key: key, Value: "fwd", StateDigest: 9,
					At: ev.At,
				})
				if err != nil {
					return fmt.Errorf("juryload: send: %w", err)
				}
			}
			at := ev.At
			for _, sec := range members {
				if sec == primary {
					continue
				}
				at += time.Microsecond
				envelopes++
				err := c.Send(core.Response{
					Controller: sec, Primary: primary, Trigger: tid,
					Kind: core.SecondaryExec, Tainted: true,
					Cache: store.FlowsDB, Op: store.OpCreate,
					Key: key, Value: "fwd", StateDigest: 9,
					At: at,
				})
				if err != nil {
					return fmt.Errorf("juryload: send: %w", err)
				}
			}
		case loadgen.HostJoin, loadgen.HostLeave:
			op, val := store.OpUpdate, "join"
			if ev.Kind == loadgen.HostLeave {
				op, val = store.OpDelete, "gone"
			}
			envelopes++
			err := c.Send(core.Response{
				Controller: members[ev.Src%uint64(n)],
				Kind:       core.CacheUpdate, Tainted: false,
				Cache: store.HostDB, Op: op,
				Key:   topo.HostMAC(int(ev.Src)).String(),
				Value: val, StateDigest: 9,
				At: ev.At,
			})
			if err != nil {
				return fmt.Errorf("juryload: send: %w", err)
			}
		case loadgen.LinkFlap:
			val := "down"
			if ev.Up {
				val = "up"
			}
			envelopes++
			err := c.Send(core.Response{
				Controller: members[uint64(ev.Link)%uint64(n)],
				Kind:       core.CacheUpdate, Tainted: false,
				Cache: store.LinksDB, Op: store.OpUpdate,
				Key:   links[ev.Link].String(),
				Value: val, StateDigest: 9,
				At: ev.At,
			})
			if err != nil {
				return fmt.Errorf("juryload: send: %w", err)
			}
		}
	}
	// Drain the bounded queue before measuring: what remains unsent past
	// the deadline is loss, and loss is visible on Dropped().
	deadline := time.Now().Add(30 * time.Second)         //jurylint:allow wallclock -- drain deadline on a live TCP sink
	for c.Backlog() > 0 && time.Now().Before(deadline) { //jurylint:allow wallclock -- drain deadline on a live TCP sink
		time.Sleep(5 * time.Millisecond) //jurylint:allow wallclock -- polling a live socket drain
	}
	elapsed := time.Since(start) //jurylint:allow wallclock -- wire throughput is measured in wall time
	if err := c.RequestStats(); err != nil {
		log.Printf("juryload: stats request: %v", err)
	}
	statsDeadline := time.Now().Add(3 * time.Second) //jurylint:allow wallclock -- stats-reply wait on a live TCP sink
	for time.Now().Before(statsDeadline) {           //jurylint:allow wallclock -- stats-reply wait on a live TCP sink
		statsMu.Lock()
		done := stats != nil
		statsMu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond) //jurylint:allow wallclock -- polling a live socket reply
	}

	perSec := float64(envelopes) / elapsed.Seconds()
	fmt.Printf("juryload: %d events -> %d envelopes in %v wall (%.0f envelopes/s)\n",
		events, envelopes, elapsed.Round(time.Millisecond), perSec)
	fmt.Printf("juryload: wire client: dropped=%d reconnects=%d backlog=%d\n",
		c.Dropped(), c.Reconnects(), c.Backlog())
	statsMu.Lock()
	defer statsMu.Unlock()
	if stats != nil {
		fmt.Printf("juryload: server: decided=%d valid=%d alarms=%d timeouts=%d pending=%d (results pushed here: %d)\n",
			stats.Decided, stats.Valid, stats.Faults, stats.Timeouts, stats.Pending, results)
	} else {
		fmt.Println("juryload: no stats reply (validator unreachable?)")
	}
	return nil
}

// pointFile names a point's telemetry file by its parameter identity.
func pointFile(kind string, pt loadgen.CampaignPoint) string {
	return fmt.Sprintf("%s-rate%.0f-shards%d.jsonl", kind, pt.Rate, pt.Shards)
}

func writeSeries(path string, s *obs.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeFlight(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
