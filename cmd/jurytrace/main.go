// Command jurytrace stitches the JSONL span traces of N JURY processes
// (controller-side jurylive, validator-side juryd or jurysim) into one
// merged timeline. By default it emits a Chrome trace_event file for
// chrome://tracing or Perfetto; -jsonl emits merged JSONL instead (an
// obs.Stitch input itself, so stitches compose).
//
// Each argument names one input as origin=path or origin=shiftNS=path,
// where shiftNS is the virtual-clock-base offset aligning that process
// onto the stitched axis. juryd logs the estimated shift per origin at
// shutdown ("stitch shift for origin ..."); the validator's own trace
// uses shift 0.
//
// Usage:
//
//	jurytrace -out trace.json juryd=validator.jsonl jurylive=1500000=controller.jsonl
//	jurytrace -jsonl -out merged.jsonl juryd=validator.jsonl jurylive=controller.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/jurysdn/jury/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		out   = flag.String("out", "", "output path (empty = stdout)")
		jsonl = flag.Bool("jsonl", false, "emit merged JSONL spans instead of a Chrome trace")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("jurytrace: no inputs; expected origin=path or origin=shiftNS=path arguments")
	}

	var inputs []obs.StitchInput
	var files []*os.File
	defer func() {
		for _, f := range files {
			_ = f.Close()
		}
	}()
	for _, arg := range flag.Args() {
		in, err := parseInput(arg)
		if err != nil {
			return err
		}
		f, err := os.Open(in.path)
		if err != nil {
			return fmt.Errorf("jurytrace: %w", err)
		}
		files = append(files, f)
		inputs = append(inputs, obs.StitchInput{Origin: in.origin, ShiftNS: in.shiftNS, R: f})
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("jurytrace: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				log.Printf("jurytrace: close %s: %v", *out, cerr)
			}
		}()
		w = f
	}
	if *jsonl {
		return obs.StitchJSONL(w, inputs...)
	}
	return obs.StitchChromeTrace(w, inputs...)
}

type stitchArg struct {
	origin  string
	shiftNS int64
	path    string
}

// parseInput decodes origin=path or origin=shiftNS=path.
func parseInput(arg string) (stitchArg, error) {
	parts := strings.SplitN(arg, "=", 3)
	switch len(parts) {
	case 2:
		return stitchArg{origin: parts[0], path: parts[1]}, nil
	case 3:
		shift, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return stitchArg{}, fmt.Errorf("jurytrace: %q: shift: %w", arg, err)
		}
		return stitchArg{origin: parts[0], shiftNS: shift, path: parts[2]}, nil
	default:
		return stitchArg{}, fmt.Errorf("jurytrace: %q: expected origin=path or origin=shiftNS=path", arg)
	}
}
