// Command juryfig regenerates every figure of the paper's evaluation
// (§VII, Figs. 4a-4i) plus the policy-validation table, printing each as a
// tab-separated series ready for plotting. Use -fig to regenerate a single
// figure, or -all for the complete set (several minutes of simulation).
//
// Figure campaigns fan their points across a bounded worker pool
// (internal/sweep). Each point's seed is derived from -seed and the
// point's parameters, so output is bit-identical at any -parallel width.
// With -cache, completed points are stored on disk and reruns resume
// from where they stopped; delete the directory (or bump
// experiment.SchemaVersion) to invalidate. -progress reports per-point
// completion and an ETA on stderr, leaving stdout clean TSV.
//
// Usage:
//
//	juryfig -fig 4a
//	juryfig -all -progress -cache .jurycache > figures.tsv
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/experiment"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/sweep"
	"github.com/jurysdn/jury/internal/trigger"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// batch carries the sweep configuration shared by every figure campaign.
var batch experiment.BatchOptions

func run() error {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 4a 4b 4c 4d 4e 4f 4g 4h 4i policy")
		all      = flag.Bool("all", false, "regenerate every figure")
		dur      = flag.Duration("duration", 12*time.Second, "virtual duration per run")
		seed     = flag.Int64("seed", 7, "root seed; every point's seed derives from it and the point's parameters")
		parallel = flag.Int("parallel", 0, "concurrent simulations per figure (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-point progress and ETA on stderr")
		cacheDir = flag.String("cache", "", "cache completed points in this directory and resume from it on rerun")
	)
	flag.Parse()

	batch = experiment.BatchOptions{RootSeed: *seed, Parallelism: *parallel}
	if *progress {
		batch.Progress = printProgress
	}
	if *cacheDir != "" {
		cache, err := sweep.NewCache(*cacheDir, experiment.SchemaVersion)
		if err != nil {
			return err
		}
		batch.Cache = cache
	}

	figures := map[string]func(time.Duration) error{
		"4a":     fig4a,
		"4b":     fig4b,
		"4c":     fig4c,
		"4d":     fig4d,
		"4e":     fig4e,
		"4f":     fig4f,
		"4g":     fig4g,
		"4h":     fig4h,
		"4i":     fig4i,
		"policy": policyTable,
	}
	order := []string{"4a", "4b", "4c", "4d", "4e", "4f", "4g", "4h", "4i", "policy"}
	if *all {
		for _, name := range order {
			if err := figures[name](*dur); err != nil {
				return fmt.Errorf("fig %s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := figures[strings.ToLower(*fig)]
	if !ok {
		return fmt.Errorf("unknown figure %q (choose from %s)", *fig, strings.Join(order, " "))
	}
	return f(*dur)
}

// printProgress renders sweep events on stderr so stdout stays clean TSV.
func printProgress(ev sweep.Event) {
	switch ev.Type {
	case sweep.PointStarted:
		fmt.Fprintf(os.Stderr, "juryfig: run %s\n", ev.Key)
	case sweep.PointDone:
		status := "done"
		switch {
		case ev.Err != nil:
			status = "FAILED"
		case ev.Cached:
			status = "cached"
		}
		line := fmt.Sprintf("juryfig: [%d/%d] %s %s", ev.Done, ev.Total, status, ev.Key)
		if ev.ETA > 0 {
			line += fmt.Sprintf(" (eta %s)", ev.ETA.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func printCDF(label string, res *experiment.DetectionResult) {
	for _, p := range res.Detections.CDF(25) {
		fmt.Printf("%s\t%.3f\t%.3f\n", label, float64(p.Value)/float64(time.Millisecond), p.Fraction)
	}
}

func fig4a(dur time.Duration) error {
	fmt.Println("# Fig 4a: ONOS detection-time CDFs (series\tms\tfraction)")
	var cfgs []experiment.DetectionConfig
	for _, c := range []struct{ k, m int }{{2, 0}, {4, 0}, {6, 0}, {6, 2}} {
		cfgs = append(cfgs, experiment.DetectionConfig{
			Kind: jury.ONOS, K: c.k, M: c.m,
			BaseRate: 1500, PeakRate: 5500,
			Duration: dur,
		})
	}
	res, err := experiment.DetectionBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		printCDF(fmt.Sprintf("k=%d,m=%d", r.Point.Params.K, r.Point.Params.M), r.Value)
	}
	return nil
}

func fig4b(dur time.Duration) error {
	fmt.Println("# Fig 4b: ONOS detection-time CDFs by PACKET_IN rate, k=6 m=0")
	var cfgs []experiment.DetectionConfig
	for _, rate := range []float64{500, 3000, 5500} {
		cfgs = append(cfgs, experiment.DetectionConfig{
			Kind: jury.ONOS, K: 6,
			BaseRate: rate, PeakRate: rate,
			Duration: dur,
		})
	}
	res, err := experiment.DetectionBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		printCDF(fmt.Sprintf("%.0f/s", r.Point.Params.BaseRate), r.Value)
	}
	return nil
}

func fig4c(dur time.Duration) error {
	fmt.Println("# Fig 4c: ODL detection-time CDFs")
	var cfgs []experiment.DetectionConfig
	for _, c := range []struct{ k, m int }{{2, 0}, {4, 0}, {6, 0}, {6, 2}} {
		cfgs = append(cfgs, experiment.DetectionConfig{
			Kind: jury.ODL, K: c.k, M: c.m,
			BaseRate: 120, PeakRate: 120,
			Timeout:  5 * time.Second,
			Duration: dur,
		})
	}
	res, err := experiment.DetectionBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		printCDF(fmt.Sprintf("k=%d,m=%d", r.Point.Params.K, r.Point.Params.M), r.Value)
	}
	return nil
}

func fig4d(dur time.Duration) error {
	fmt.Println("# Fig 4d: ONOS detection times on benign traces, k=6 m=2 (+false-positive rate)")
	var cfgs []experiment.DetectionConfig
	for _, name := range []string{"LBNL", "UNIV", "SMIA"} {
		cfgs = append(cfgs, experiment.DetectionConfig{
			Kind: jury.ONOS, K: 6, M: 2,
			Trace:    name,
			Timeout:  130 * time.Millisecond,
			Duration: dur,
		})
	}
	res, err := experiment.DetectionBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		printCDF(r.Point.Params.Trace, r.Value)
		fmt.Printf("# %s: decided=%d false-positive rate=%.3f%%\n",
			r.Point.Params.Trace, r.Value.Decided, r.Value.FPRate*100)
	}
	return nil
}

func fig4e(time.Duration) error {
	fmt.Println("# Fig 4e: Cbench bursts overwhelm the controller (second\tpacketin/s\tflowmod/s)")
	res, err := experiment.CbenchBatch(context.Background(),
		[]experiment.CbenchConfig{{Burst: 12000, Duration: 20 * time.Second}}, batch)
	if err != nil {
		return err
	}
	r := res[0].Value
	for i := range r.Seconds {
		fmt.Printf("%d\t%.0f\t%.0f\n", r.Seconds[i], r.PacketIns[i], r.FlowMods[i])
	}
	return nil
}

func throughputFig(kind jury.ControllerKind, rates []float64, dur time.Duration) error {
	var cfgs []experiment.ThroughputConfig
	for _, n := range []int{1, 3, 5, 7} {
		for _, rate := range rates {
			cfgs = append(cfgs, experiment.ThroughputConfig{
				Kind: kind, N: n, JuryK: -1, Offered: rate, Duration: dur,
			})
		}
	}
	res, err := experiment.ThroughputBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("n=%d\t%.0f\t%.0f\t%.0f\n",
			r.Point.Params.N, r.Point.Params.Offered, r.Value.PacketIns, r.Value.FlowMods)
	}
	return nil
}

func fig4f(dur time.Duration) error {
	fmt.Println("# Fig 4f: vanilla ONOS (series\toffered\tpacketin/s\tflowmod/s)")
	return throughputFig(jury.ONOS, []float64{1000, 3000, 5000, 7500, 10000}, dur)
}

func fig4g(dur time.Duration) error {
	fmt.Println("# Fig 4g: vanilla ODL (series\toffered\tpacketin/s\tflowmod/s)")
	return throughputFig(jury.ODL, []float64{200, 400, 600, 800, 1000}, dur)
}

func fig4h(dur time.Duration) error {
	fmt.Println("# Fig 4h: JURY-enhanced ONOS, n=7 (series\toffered\tflowmod/s)")
	var cfgs []experiment.ThroughputConfig
	for _, k := range []int{-1, 2, 4, 6} {
		for _, rate := range []float64{2000, 4000, 6000, 8000, 10000} {
			cfgs = append(cfgs, experiment.ThroughputConfig{
				Kind: jury.ONOS, N: 7, JuryK: k, Offered: rate, Duration: dur,
			})
		}
	}
	res, err := experiment.ThroughputBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		label := "vanilla"
		if k := r.Point.Params.JuryK; k >= 0 {
			label = fmt.Sprintf("jury k=%d", k)
		}
		fmt.Printf("%s\t%.0f\t%.0f\n", label, r.Point.Params.Offered, r.Value.FlowMods)
	}
	return nil
}

func fig4i(dur time.Duration) error {
	fmt.Println("# Fig 4i: ODL decapsulation overhead CDF (series\tµs\tfraction)")
	var cfgs []experiment.DecapsulationConfig
	for _, rate := range []float64{100, 200, 300, 400, 500} {
		cfgs = append(cfgs, experiment.DecapsulationConfig{Rate: rate, Duration: dur})
	}
	res, err := experiment.DecapsulationBatch(context.Background(), cfgs, batch)
	if err != nil {
		return err
	}
	for _, r := range res {
		for _, p := range r.Value.CDF(25) {
			fmt.Printf("%.0f/s\t%.1f\t%.3f\n",
				r.Point.Params.Rate, float64(p.Value)/float64(time.Microsecond), p.Fraction)
		}
	}
	return nil
}

// policyTable stays a direct wall-clock micro-measurement: it times the
// policy engines on this machine rather than running a simulation, so
// there is nothing to seed or cache.
func policyTable(time.Duration) error {
	fmt.Println("# Policy validation cost (§VII-B2(3)): policies\tlinear-scan\tindexed")
	for _, n := range []int{100, 1000, 10000} {
		linear, indexed, err := policyCost(n)
		if err != nil {
			return err
		}
		fmt.Printf("%d\t%v\t%v\n", n, linear, indexed)
	}
	return nil
}

// policyCost measures the wall-clock cost of validating one response
// against n policies with the linear and indexed engines. It is the one
// deliberate microbenchmark in the figure pipeline: §VII-B2(3) reports
// real CPU time per policy check, so there is no virtual clock to use.
//
//jurylint:allow wallclock -- microbenchmark measures real CPU time (§VII-B2(3))
func policyCost(n int) (linear, indexed time.Duration, err error) {
	policies := syntheticPolicies(n)
	lin, err := policy.New(policies)
	if err != nil {
		return 0, 0, err
	}
	idx, err := policy.NewIndexed(policies)
	if err != nil {
		return 0, 0, err
	}
	in := policy.Input{
		Kind:  trigger.External,
		Cache: store.FlowsDB,
		Op:    store.OpCreate,
		Key:   "of:0000000000000001/abc",
		Value: `{"dpid":1}`,
	}
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		lin.Check(in)
	}
	linear = time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		idx.Check(in)
	}
	indexed = time.Since(start) / reps
	return linear, indexed, nil
}

// syntheticPolicies builds the simulated policy sets of §VII-B2(3): none
// match the probe response, so the whole set is scanned.
func syntheticPolicies(n int) []policy.Policy {
	caches := []string{"LinksDB", "EdgesDB", "HostDB", "ArpDB"}
	ops := []string{"create", "update", "delete"}
	out := make([]policy.Policy, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, policy.Policy{
			Name:       fmt.Sprintf("p%d", i),
			Controller: fmt.Sprintf("%d", i%7+1),
			Cache:      caches[i%len(caches)],
			Operation:  ops[i%len(ops)],
			Entry:      fmt.Sprintf("10.%d.*,*", i%250),
		})
	}
	return out
}
