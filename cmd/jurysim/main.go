// Command jurysim boots a simulated clustered SDN deployment — with or
// without JURY — drives a workload against it, and prints a full report:
// throughput, validation counters, detection-time percentiles, alarms, and
// network-overhead accounting (§VII-B2).
//
// Usage:
//
//	jurysim -kind onos -n 7 -k 6 -rate 2000 -duration 15s
//	jurysim -kind odl -n 7 -k 6 -rate 120 -duration 15s -fault odl-flowmod-drop
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		kindFlag  = flag.String("kind", "onos", "controller profile: onos or odl")
		n         = flag.Int("n", 7, "cluster size")
		k         = flag.Int("k", 6, "JURY replication factor")
		noJury    = flag.Bool("no-jury", false, "run the vanilla cluster without JURY")
		rate      = flag.Float64("rate", 1000, "new-flow injection rate per second")
		localPair = flag.Bool("local-pairs", true, "inject flows at the destination's edge switch (1 PACKET_IN per flow)")
		duration  = flag.Duration("duration", 15*time.Second, "measured (virtual) duration")
		seed      = flag.Int64("seed", 42, "simulation seed")
		timeout   = flag.Duration("timeout", 0, "validation timeout (0 = profile default)")
		shards    = flag.Int("shards", 1, "validator shard count (verdicts are seed-deterministic at any count)")
		faultName = flag.String("fault", "", "catalog fault to inject on controller 1 (see -list-faults)")
		listFault = flag.Bool("list-faults", false, "list the fault catalog and exit")
		trace     = flag.String("trace", "", "drive a benign trace model instead of -rate: lbnl, univ or smia")
		traceOut  = flag.String("trace-out", "", "record a per-trigger span trace and write it here (.jsonl for JSON Lines, otherwise Chrome trace_event JSON for chrome://tracing or Perfetto)")

		flightRing = flag.Int("flight-ring", 0, "flight-recorder ring capacity: retain the last N validator lifecycle events (0 = off)")
		flightDump = flag.String("flight-dump", "", "write the final flight snapshot (JSONL) here at the end of the run")
	)
	flag.Parse()

	if *listFault {
		fmt.Println("fault catalog (§III-B, §VII-A1 and appendix):")
		for _, s := range faults.Scenarios() {
			origin := "synthetic"
			if s.Real {
				origin = "real bug"
			}
			fmt.Printf("  %-28s [%s, %s] %s\n", s.Kind, s.Class, origin, s.Description)
		}
		return nil
	}

	kind := jury.ONOS
	if strings.EqualFold(*kindFlag, "odl") {
		kind = jury.ODL
	}
	cfg := jury.Config{
		Seed:              *seed,
		Kind:              kind,
		ClusterSize:       *n,
		EnableJury:        !*noJury,
		K:                 *k,
		ValidationTimeout: *timeout,
		Shards:            *shards,
		Policies: []policy.Policy{
			{Name: "no-proactive-topology-changes", Trigger: "internal", Cache: "LinksDB"},
			{Name: "match-field-hierarchy", Cache: "FlowsDB", RequireMatchHierarchy: true},
		},
	}
	if *noJury {
		cfg.Policies = nil
	}
	cfg.EnableTracing = *traceOut != ""
	if *flightDump != "" && *flightRing == 0 {
		*flightRing = obs.DefaultFlightRing
	}
	cfg.FlightRing = *flightRing
	sim, err := jury.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s n=%d jury=%v k=%d topology=%d switches\n",
		kind, *n, !*noJury, *k, sim.Topo.NumSwitches())
	boot := sim.Boot()
	fmt.Printf("boot: %v (virtual)\n", boot)

	if *faultName != "" {
		f, err := inject(sim, faults.Kind(*faultName))
		if err != nil {
			return err
		}
		fmt.Printf("fault: %s\n", f)
	}

	start := sim.Now()
	until := start + *duration
	profile := workload.ConstantRate(*rate)
	join, flap := time.Duration(0), time.Duration(0)
	if *trace != "" {
		spec, err := traceByName(*trace)
		if err != nil {
			return err
		}
		profile = spec.Profile()
		join, flap = spec.JoinEvery, spec.FlapEvery
		fmt.Printf("workload: %s trace model (mean %.0f flows/s)\n", spec.Name, spec.MeanFlowRate)
	} else {
		fmt.Printf("workload: %.0f new flows/s\n", *rate)
	}
	sim.Driver.LocalPairs = *localPair
	sim.Driver.Start(profile, until)
	sim.Driver.StartChurn(join, flap, until)
	if err := sim.Run(*duration + time.Second); err != nil {
		return err
	}

	fmt.Printf("\n-- data plane --\n")
	fmt.Printf("flows injected:   %d\n", sim.Driver.Flows())
	fmt.Printf("PACKET_IN rate:   %.0f/s\n", sim.PacketIns.MeanRate(start, until))
	fmt.Printf("FLOW_MOD rate:    %.0f/s\n", sim.FlowMods.MeanRate(start, until))
	fmt.Printf("PACKET_OUT rate:  %.0f/s\n", sim.PacketOuts.MeanRate(start, until))
	fmt.Printf("host deliveries:  %d\n", sim.Fabric.Delivered())

	fmt.Printf("\n-- network overhead (§VII-B2) --\n")
	secs := (*duration).Seconds()
	ic := float64(sim.Store.ReplicationBytes()) * 8 / secs / 1e6
	fmt.Printf("inter-controller: %.1f Mbps\n", ic)
	if sim.System != nil {
		jr := float64(sim.System.ReplicationBytes()) * 8 / secs / 1e6
		jv := float64(sim.System.ValidatorBytes()) * 8 / secs / 1e6
		fmt.Printf("JURY replication: %.1f Mbps\n", jr)
		fmt.Printf("JURY validator:   %.1f Mbps\n", jv)
		fmt.Printf("JURY share:       %.1f%% of inter-controller traffic\n", (jr+jv)/ic*100)
	}

	if v := sim.Validator(); v != nil {
		fmt.Printf("\n-- validation --\n")
		fmt.Printf("decided:   %d (valid %d, alarms %d, non-deterministic %d, timeouts %d)\n",
			v.Decided(), v.Valid(), v.Faults(), v.NonDeterministic(), v.Timeouts())
		d := &v.DetectionsExternal
		fmt.Printf("detection: p50=%v p90=%v p95=%v p99=%v\n",
			d.Percentile(50), d.Percentile(90), d.Percentile(95), d.Percentile(99))
		alarms := v.Alarms()
		show := len(alarms)
		if show > 10 {
			show = 10
		}
		for _, a := range alarms[:show] {
			fmt.Printf("ALARM: %-16s offender=C%d trigger=%s detected in %v: %s\n",
				a.Fault, a.Offender, a.Trigger, a.DetectionTime, a.Reason)
		}
		if len(alarms) > show {
			fmt.Printf("... and %d more alarms\n", len(alarms)-show)
		}
	}

	if *traceOut != "" {
		if err := writeTrace(sim, *traceOut); err != nil {
			return err
		}
	}
	if *flightDump != "" {
		if err := writeFlight(sim, *flightDump); err != nil {
			return err
		}
	}
	return nil
}

// writeFlight dumps the validator's flight-recorder ring.
func writeFlight(sim *jury.Simulation, path string) error {
	rec := sim.FlightRecorder()
	events := rec.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create flight dump: %w", err)
	}
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		_ = f.Close()
		return fmt.Errorf("write flight dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\n-- flight --\n")
	fmt.Printf("wrote %s: %d events (ring %d, %d recorded)\n", path, len(events), rec.Cap(), rec.Total())
	return nil
}

// writeTrace dumps the recorded span trace and reports its end-to-end
// coverage of decided triggers.
func writeTrace(sim *jury.Simulation, path string) error {
	tr := sim.Tracer()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create trace file: %w", err)
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Printf("\n-- trace --\n")
	fmt.Printf("wrote %s: %d spans, %d triggers end-to-end\n",
		path, len(tr.Spans()), tr.CompletedTriggers())
	if v := sim.Validator(); v != nil && v.Decided() > 0 {
		fmt.Printf("coverage: %.1f%% of decided triggers (replicate→verdict)\n",
			100*float64(tr.CompletedTriggers())/float64(v.Decided()))
	}
	return nil
}

// inject arms a catalog fault on a sensible target.
func inject(sim *jury.Simulation, kind faults.Kind) (*faults.Fault, error) {
	target := sim.Controller(1)
	switch kind {
	case faults.ONOSDatabaseLocking:
		f := faults.InjectDatabaseLocking(target)
		dpid := target.Governed()[0]
		sw, _ := sim.Fabric.Switch(dpid)
		target.ConnectSwitch(dpid, sw.HandleControllerMessage)
		return f, nil
	case faults.ONOSMasterElection:
		return faults.InjectMasterElection(sim.Controller(sim.Config.ClusterSize)), nil
	case faults.ODLFlowModDrop:
		return faults.InjectFlowModDrop(target, 1), nil
	case faults.ODLIncorrectFlowMod:
		dpid := target.Governed()[0]
		sw, _ := sim.Fabric.Switch(dpid)
		f := faults.InjectIncorrectFlowMod(target, sw)
		f.Fire()
		return f, nil
	case faults.LinkFailure:
		// Target the highest-ID controller: it wins the liveness
		// election for its cross-governed links, so its LinksDB writes
		// are the ones the fault can corrupt.
		target = sim.Controller(sim.Config.ClusterSize)
		f := faults.InjectLinkFailure(target)
		// The fault manifests on link rediscovery: flap a link whose
		// liveness master is the target.
		for _, l := range sim.Topo.Links() {
			if m, ok := sim.Members.LinkLivenessMaster(l.Src.DPID, l.Dst.DPID); ok && m == target.ID() {
				src := l.Src
				sim.Fabric.SetLinkDown(src, true)
				sim.Engine.Schedule(2*time.Second, func() { sim.Fabric.SetLinkDown(src, false) })
				break
			}
		}
		return f, nil
	case faults.UndesirableFlowMod:
		return faults.InjectUndesirableFlowMod(target), nil
	case faults.FaultyProactiveAction:
		links := sim.Topo.Links()
		f := faults.InjectFaultyProactiveAction(target, controller.LinkKey(links[0].Src, links[0].Dst))
		f.Fire()
		return f, nil
	case faults.FlowDeletionFailure:
		return faults.InjectFlowDeletionFailure(target), nil
	case faults.FlowInstantiationFailure:
		return faults.InjectFlowInstantiationFailure(target), nil
	case faults.LinkDetectionInconsistent:
		return faults.InjectLinkDetectionInconsistent(target, sim.Engine.Rand(), 50), nil
	case faults.Crash:
		f := faults.InjectCrash(target)
		sim.Engine.Schedule(time.Second, f.Fire)
		return f, nil
	case faults.TimingDelay:
		return faults.InjectTimingDelay(target, 20*time.Millisecond, 60*time.Millisecond), nil
	case faults.ByzantineCorruption:
		return faults.InjectByzantineCorruption(target, sim.Engine.Rand(), 20), nil
	default:
		return nil, fmt.Errorf("unknown fault %q (see -list-faults)", kind)
	}
}

func traceByName(name string) (workload.TraceSpec, error) {
	for _, spec := range workload.Traces() {
		if strings.EqualFold(spec.Name, name) {
			return spec, nil
		}
	}
	return workload.TraceSpec{}, fmt.Errorf("unknown trace %q (lbnl, univ, smia)", name)
}
