// Command jurylive demonstrates the live (non-simulated) path: a real SDN
// controller process accepting OpenFlow connections over TCP, with local
// switch processes dialing in, completing handshakes, and getting flow
// rules installed reactively — the same event-driven components as the
// simulation, pumped by wall-clock time (internal/ofconn).
//
// Usage:
//
//	jurylive -switches 4 -flows 20
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/ofconn"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
)

// liveSwitch is one switch in its own pumped event domain, connected to
// the controller over real TCP.
type liveSwitch struct {
	sw   *dataplane.Switch
	pump *ofconn.Pump
	end  *ofconn.SwitchEnd
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "controller listen address")
		nSwitches = flag.Int("switches", 4, "number of live switches to connect")
		nFlows    = flag.Int("flows", 20, "flows to push through each switch")
		metricsAt = flag.String("metrics", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")
	)
	flag.Parse()

	// Controller domain: one controller on a wall-clock-pumped engine.
	ctrlEng := simnet.NewEngine(1)
	ctrlPump := ofconn.NewPump(ctrlEng, time.Millisecond)
	defer ctrlPump.Close()
	var dpids []topo.DPID
	for i := 1; i <= *nSwitches; i++ {
		dpids = append(dpids, topo.DPID(i))
	}
	members := cluster.NewMembership(cluster.SingleController, []store.NodeID{1}, dpids)
	profile := controller.ONOSProfile()
	profile.PausePeriod = 0
	profile.LLDPPeriod = 0
	reg := obs.NewRegistry()
	members.InstrumentMetrics(reg)
	sccfg := store.DefaultConfig(store.Eventual)
	sccfg.Metrics = reg
	sc := store.NewCluster(ctrlEng, sccfg)
	var ctrl *controller.Controller
	ctrlPump.Do(func() {
		ctrl = controller.New(ctrlEng, 1, profile, sc.AddNode(1), members)
	})

	if *metricsAt != "" {
		// Scrapes hop onto the controller pump so registry reads are
		// serialized with the event loop mutating it.
		expo, err := obs.ServeExpo(*metricsAt, obs.ExpoConfig{
			Write: func(w io.Writer) error {
				var werr error
				ctrlPump.Do(func() { werr = reg.WritePrometheus(w) })
				return werr
			},
		})
		if err != nil {
			return err
		}
		defer expo.Close()
		fmt.Printf("metrics on http://%s/metrics\n", expo.Addr())
	}

	sessions := make(map[topo.DPID]bool)
	ce, err := ofconn.ListenController(*listen, ctrlPump,
		func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)) {
			if !sessions[dpid] {
				sessions[dpid] = true
				ctrl.ConnectSwitch(dpid, func(m openflow.Message) {
					mm := m
					go send(mm) // leave the pump before hitting the socket
				})
			}
			ctrl.HandleSouthbound(dpid, msg, nil)
		})
	if err != nil {
		return err
	}
	defer ce.Close()
	fmt.Printf("controller listening on %s\n", ce.Addr())

	var switches []*liveSwitch
	for i := 1; i <= *nSwitches; i++ {
		ls, err := dialSwitch(ce.Addr(), topo.DPID(i))
		if err != nil {
			return err
		}
		defer ls.pump.Close()
		defer ls.end.Close()
		switches = append(switches, ls)
	}

	// Let handshakes land, seed host bindings at the controller, then
	// push traffic through every switch.
	time.Sleep(200 * time.Millisecond)
	ctrlPump.Do(func() {
		for i := 1; i <= *nSwitches; i++ {
			mac := topo.HostMAC(i)
			rec := fmt.Sprintf(`{"mac":"%s","ip":"%s","dpid":%d,"port":2}`, mac, topo.HostIP(i), i)
			ctrl.Node().Write(store.EdgesDB, store.OpCreate, mac.String(), rec, nil)
		}
	})
	for idx, ls := range switches {
		dst := topo.HostMAC(idx + 1)
		for f := 0; f < *nFlows; f++ {
			src := openflow.MAC{0x00, 0xAA, 0, 0, byte(idx), byte(f)}
			frame := openflow.TCPPacket(src, dst, topo.HostIP(100+f), topo.HostIP(idx+1), uint16(10000+f), 80, 0x02, 0)
			ls := ls
			ls.pump.Do(func() { ls.sw.Inject(frame, 1) })
		}
	}

	// Wait for the rules to cross the wire and land in the tables.
	want := *nSwitches * *nFlows
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if countRules(switches) >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("switch   rules  packet_ins")
	total := 0
	for i, ls := range switches {
		var rules int
		var pins uint64
		ls.pump.Do(func() {
			rules = len(ls.sw.Table())
			pins = ls.sw.PacketIns()
		})
		total += rules
		fmt.Printf("of:%04x  %5d  %10d\n", i+1, rules, pins)
	}
	if total < want {
		return fmt.Errorf("only %d of %d rules installed", total, want)
	}
	fmt.Printf("OK: %d reactive flow rules installed over live TCP OpenFlow\n", total)
	return nil
}

func countRules(switches []*liveSwitch) int {
	total := 0
	for _, ls := range switches {
		ls.pump.Do(func() { total += len(ls.sw.Table()) })
	}
	return total
}

func dialSwitch(addr string, dpid topo.DPID) (*liveSwitch, error) {
	eng := simnet.NewEngine(int64(dpid))
	pump := ofconn.NewPump(eng, time.Millisecond)
	var sw *dataplane.Switch
	pump.Do(func() {
		sw = dataplane.NewSwitch(eng, dpid)
		sw.SetPorts([]uint16{1, 2})
	})
	end, err := ofconn.DialSwitch(addr, dpid, pump, func(msg openflow.Message) {
		sw.HandleControllerMessage(msg)
	})
	if err != nil {
		pump.Close()
		return nil, err
	}
	pump.Do(func() {
		sw.SetSendUp(func(msg openflow.Message) { _ = end.Send(msg) })
	})
	return &liveSwitch{sw: sw, pump: pump, end: end}, nil
}
