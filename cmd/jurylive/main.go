// Command jurylive demonstrates the live (non-simulated) path: a real SDN
// controller process accepting OpenFlow connections over TCP, with local
// switch processes dialing in, completing handshakes, and getting flow
// rules installed reactively — the same event-driven components as the
// simulation, pumped by wall-clock time (internal/ofconn).
//
// With -validator, every egress FLOW_MOD is additionally streamed to a
// running juryd as a fabricated response complement (one untainted primary
// response plus -validator-k tainted secondary responses), exercising the
// out-of-band wire path end to end. The wire client reconnects with
// backoff, so a juryd restart mid-run costs at most the bounded send
// backlog — the loss shows up in the dropped count, never silently.
//
// Usage:
//
//	jurylive -switches 4 -flows 20
//	jurylive -switches 4 -flows 20 -validator 127.0.0.1:9090 -validator-k 2
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/ofconn"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/wire"
)

// liveSwitch is one switch in its own pumped event domain, connected to
// the controller over real TCP.
type liveSwitch struct {
	sw   *dataplane.Switch
	pump *ofconn.Pump
	end  *ofconn.SwitchEnd
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "controller listen address")
		nSwitches = flag.Int("switches", 4, "number of live switches to connect")
		nFlows    = flag.Int("flows", 20, "flows to push through each switch")
		metricsAt = flag.String("metrics", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")

		validatorAt = flag.String("validator", "", "stream egress FLOW_MODs to a juryd validator at this address (empty = off)")
		validatorK  = flag.Int("validator-k", 2, "fabricated secondary responses per egress (must match juryd -k)")
		codecName   = flag.String("codec", "json", "wire codec toward the validator: json (newline-delimited, the default) or binary (length-prefixed frames, batched writes)")
		traceOut    = flag.String("trace-out", "", "write the controller-side span trace (JSONL) to this path at exit; stitch against juryd -trace-out with jurytrace")
	)
	flag.Parse()

	// Controller domain: one controller on a wall-clock-pumped engine.
	ctrlEng := simnet.NewEngine(1)
	ctrlPump := ofconn.NewPump(ctrlEng, time.Millisecond)
	defer ctrlPump.Close()
	var dpids []topo.DPID
	for i := 1; i <= *nSwitches; i++ {
		dpids = append(dpids, topo.DPID(i))
	}
	members := cluster.NewMembership(cluster.SingleController, []store.NodeID{1}, dpids)
	profile := controller.ONOSProfile()
	profile.PausePeriod = 0
	profile.LLDPPeriod = 0
	reg := obs.NewRegistry()
	members.InstrumentMetrics(reg)
	sccfg := store.DefaultConfig(store.Eventual)
	sccfg.Metrics = reg
	sc := store.NewCluster(ctrlEng, sccfg)
	var ctrl *controller.Controller
	ctrlPump.Do(func() {
		ctrl = controller.New(ctrlEng, 1, profile, sc.AddNode(1), members)
	})

	// Controller-side span trace on the pump's virtual clock. The tracer
	// is single-goroutine by contract, so every touch — open at egress,
	// close at the validator's verdict, final export — hops onto the pump.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(ctrlEng.Now)
		tracer.InstrumentMetrics(reg)
	}

	// Optional out-of-band validation: every egress FLOW_MOD becomes a
	// fabricated response complement streamed to a juryd over the
	// resilient wire client (reconnects across a juryd restart; loss is
	// bounded by the send queue and visible on Dropped()).
	var (
		vc       *wire.Client
		vmu      sync.Mutex
		vResults int
		vAlarms  int
		vStats   *wire.Stats
	)
	if *validatorAt != "" {
		codec, err := wire.ParseCodec(*codecName)
		if err != nil {
			return fmt.Errorf("jurylive: %w", err)
		}
		ccfg := wire.ClientConfig{
			Codec:   codec,
			Metrics: reg,
			OnResult: func(r core.Result) {
				vmu.Lock()
				vResults++
				if r.Verdict == core.VerdictFault {
					vAlarms++
				}
				vmu.Unlock()
				if tracer != nil {
					// Close the trigger's round-trip span on the pump, where
					// the tracer lives.
					ctrlPump.Do(func() {
						id := string(r.Trigger)
						tracer.EndSpan(id, "validate-rtt", "wire", r.Reason)
						tracer.EndTrigger(id, r.Verdict.String(), r.Fault.String())
					})
				}
			},
			OnStats: func(st wire.Stats) {
				vmu.Lock()
				vStats = &st
				vmu.Unlock()
			},
		}
		if tracer != nil {
			// Stamp every response envelope with the controller's span
			// context: Send runs on the pump goroutine, so reading the
			// pump engine's clock here is safe.
			ccfg.Trace = &wire.TraceContext{Origin: "jurylive"}
			ccfg.TraceNow = ctrlEng.Now
		}
		c, err := wire.DialConfig(*validatorAt, ccfg)
		if err != nil {
			return fmt.Errorf("jurylive: validator: %w", err)
		}
		defer c.Close()
		vc = c
		fmt.Printf("streaming egress FLOW_MODs to validator at %s (k=%d, codec=%s)\n", *validatorAt, *validatorK, codec)
		egress := 0
		ctrlPump.Do(func() {
			ctrl.OnEgress = func(dpid topo.DPID, msg openflow.Message, _ *trigger.Context) {
				if _, ok := msg.(*openflow.FlowMod); !ok {
					return
				}
				egress++ // runs on the pump: serialized with the event loop
				if tracer != nil {
					id := fmt.Sprintf("live-%d", egress)
					tracer.StartTrigger(id, "flow-mod")
					tracer.Emit(id, "egress", "controller/C1", ctrlEng.Now(), ctrlEng.Now(), dpid.String())
					tracer.StartSpan(id, "validate-rtt", "wire")
				}
				base := core.Response{
					Primary: 1,
					Trigger: trigger.ID(fmt.Sprintf("live-%d", egress)),
					Cache:   store.FlowsDB,
					Op:      store.OpCreate,
					Key:     dpid.String(),
					Value:   core.CanonicalMessage(msg),
				}
				p := base
				p.Controller = 1
				p.Kind = core.CacheUpdate
				if err := vc.Send(p); err != nil {
					log.Printf("jurylive: validator send: %v", err)
				}
				for i := 0; i < *validatorK; i++ {
					s := base
					s.Controller = store.NodeID(2 + i)
					s.Kind = core.SecondaryExec
					s.Tainted = true
					if err := vc.Send(s); err != nil {
						log.Printf("jurylive: validator send: %v", err)
					}
				}
			}
		})
	}

	if *metricsAt != "" {
		// Scrapes hop onto the controller pump so registry reads are
		// serialized with the event loop mutating it.
		expo, err := obs.ServeExpo(*metricsAt, obs.ExpoConfig{
			Write: func(w io.Writer) error {
				var werr error
				ctrlPump.Do(func() { werr = reg.WritePrometheus(w) })
				return werr
			},
		})
		if err != nil {
			return err
		}
		defer expo.Close()
		fmt.Printf("metrics on http://%s/metrics\n", expo.Addr())
	}

	sessions := make(map[topo.DPID]bool)
	ce, err := ofconn.ListenController(*listen, ctrlPump,
		func(dpid topo.DPID, msg openflow.Message, send func(openflow.Message)) {
			if !sessions[dpid] {
				sessions[dpid] = true
				ctrl.ConnectSwitch(dpid, func(m openflow.Message) {
					mm := m
					go send(mm) // leave the pump before hitting the socket
				})
			}
			ctrl.HandleSouthbound(dpid, msg, nil)
		})
	if err != nil {
		return err
	}
	defer ce.Close()
	fmt.Printf("controller listening on %s\n", ce.Addr())

	var switches []*liveSwitch
	for i := 1; i <= *nSwitches; i++ {
		ls, err := dialSwitch(ce.Addr(), topo.DPID(i))
		if err != nil {
			return err
		}
		defer ls.pump.Close()
		defer ls.end.Close()
		switches = append(switches, ls)
	}

	// Let handshakes land, seed host bindings at the controller, then
	// push traffic through every switch.
	time.Sleep(200 * time.Millisecond) //jurylint:allow wallclock -- live TCP handshake settle is real time
	ctrlPump.Do(func() {
		for i := 1; i <= *nSwitches; i++ {
			mac := topo.HostMAC(i)
			rec := fmt.Sprintf(`{"mac":"%s","ip":"%s","dpid":%d,"port":2}`, mac, topo.HostIP(i), i)
			ctrl.Node().Write(store.EdgesDB, store.OpCreate, mac.String(), rec, nil)
		}
	})
	for idx, ls := range switches {
		dst := topo.HostMAC(idx + 1)
		for f := 0; f < *nFlows; f++ {
			src := openflow.MAC{0x00, 0xAA, 0, 0, byte(idx), byte(f)}
			frame := openflow.TCPPacket(src, dst, topo.HostIP(100+f), topo.HostIP(idx+1), uint16(10000+f), 80, 0x02, 0)
			ls := ls
			ls.pump.Do(func() { ls.sw.Inject(frame, 1) })
		}
	}

	// Wait for the rules to cross the wire and land in the tables.
	want := *nSwitches * *nFlows
	waitUntil(5*time.Second, func() bool { return countRules(switches) >= want })
	fmt.Println("switch   rules  packet_ins")
	total := 0
	for i, ls := range switches {
		var rules int
		var pins uint64
		ls.pump.Do(func() {
			rules = len(ls.sw.Table())
			pins = ls.sw.PacketIns()
		})
		total += rules
		fmt.Printf("of:%04x  %5d  %10d\n", i+1, rules, pins)
	}
	if total < want {
		return fmt.Errorf("only %d of %d rules installed", total, want)
	}
	fmt.Printf("OK: %d reactive flow rules installed over live TCP OpenFlow\n", total)

	if vc != nil {
		// Ask the validator for its aggregate view, then report the wire
		// client's own accounting: reconnects and any shed backlog.
		if err := vc.RequestStats(); err != nil {
			log.Printf("jurylive: stats request: %v", err)
		}
		waitUntil(3*time.Second, func() bool {
			vmu.Lock()
			defer vmu.Unlock()
			return vStats != nil
		})
		vmu.Lock()
		fmt.Printf("validator: %d results received (%d alarms)\n", vResults, vAlarms)
		if vStats != nil {
			fmt.Printf("validator: decided=%d valid=%d alarms=%d timeouts=%d pending=%d\n",
				vStats.Decided, vStats.Valid, vStats.Faults, vStats.Timeouts, vStats.Pending)
		} else {
			fmt.Println("validator: no stats reply (validator unreachable?)")
		}
		vmu.Unlock()
		fmt.Printf("wire client: reconnects=%d dropped=%d backlog=%d\n",
			vc.Reconnects(), vc.Dropped(), vc.Backlog())
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("jurylive: trace: %w", err)
		}
		var werr error
		ctrlPump.Do(func() { werr = tracer.WriteJSONL(f) })
		if werr == nil {
			werr = f.Close()
		} else {
			_ = f.Close()
		}
		if werr != nil {
			return fmt.Errorf("jurylive: trace: %w", werr)
		}
		fmt.Printf("controller trace -> %s (%d triggers)\n", *traceOut, tracer.CompletedTriggers())
	}
	return nil
}

// waitUntil polls cond every 10ms until it reports true or the timeout
// elapses, returning cond's final value. This is the harness's single
// wall-clock boundary for readiness checks: the switches, controller and
// validator all run over real TCP, so their settling time is real time.
//
//jurylint:allow wallclock -- live-harness readiness polling is wall-clock by definition
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func countRules(switches []*liveSwitch) int {
	total := 0
	for _, ls := range switches {
		ls.pump.Do(func() { total += len(ls.sw.Table()) })
	}
	return total
}

func dialSwitch(addr string, dpid topo.DPID) (*liveSwitch, error) {
	eng := simnet.NewEngine(int64(dpid))
	pump := ofconn.NewPump(eng, time.Millisecond)
	var sw *dataplane.Switch
	pump.Do(func() {
		sw = dataplane.NewSwitch(eng, dpid)
		sw.SetPorts([]uint16{1, 2})
	})
	end, err := ofconn.DialSwitch(addr, dpid, pump, func(msg openflow.Message) {
		sw.HandleControllerMessage(msg)
	})
	if err != nil {
		pump.Close()
		return nil, err
	}
	pump.Do(func() {
		sw.SetSendUp(func(msg openflow.Message) { _ = end.Send(msg) })
	})
	return &liveSwitch{sw: sw, pump: pump, end: end}, nil
}
