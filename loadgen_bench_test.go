package jury_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/jurysdn/jury/internal/loadgen"
)

// BenchmarkLoadStreamScaling measures the sharded validation plane's
// Submit throughput under the streaming loadgen workload at 1/2/4/8
// shards (BENCH_load.json, `make bench-load`) — the scale-campaign
// counterpart of BenchmarkShardScaling, which drives a synthetic
// response table instead of a generated workload. Each width streams
// the identical heavy-tailed event sequence (per-point digests pin
// this) through a FatTree(8) fabric with a 2^20 virtual-host
// population, so the only variable is the plane width. As in
// BenchmarkShardScaling, submit_per_s is the measured per-response wall
// rate scaled by the partition factor triggers/bottleneck-shard-load:
// the bottleneck shard's serial work is what gates a multi-core
// deployment, and partition_x (ideal: the shard count) certifies how
// evenly FNV trigger ownership divides it.
func BenchmarkLoadStreamScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			var last loadgen.PointOutcome
			for i := 0; i < b.N; i++ {
				out, err := loadgen.RunCampaign(context.Background(), loadgen.CampaignConfig{
					K:      8,
					Hosts:  1 << 20,
					Rates:  []float64{1e6},
					Shards: []int{n},
					Window: 50 * time.Millisecond,
					Churn:  loadgen.ChurnSpec{JoinRate: 500, LeaveRate: 400, FlapRate: 100},
					// One sweep point per run: parallelism cannot skew the
					// wall clock the throughput figure is derived from.
					Parallelism: 1,
					RootSeed:    7,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = out[0]
			}
			if last.Result.Triggers == 0 || last.Result.Decided != last.Result.Triggers {
				b.Fatalf("plane decided %d of %d triggers", last.Result.Decided, last.Result.Triggers)
			}
			b.ReportMetric(last.SubmitPerSec(3), "submit_per_s")
			b.ReportMetric(last.Result.PartitionX, "partition_x")
			b.ReportMetric(float64(last.Result.P95)/float64(time.Microsecond), "p95_us")
		})
	}
}
