// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VII), plus the ablation benches called out in DESIGN.md.
// Macro-benchmarks run whole simulated experiments (seconds of virtual
// time per iteration) and publish the figures' headline numbers through
// b.ReportMetric; micro-benchmarks measure the substrate hot paths.
//
// Regenerate every full series with: go run ./cmd/juryfig -all
package jury_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/experiment"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/shard"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/workload"
)

const benchDur = 8 * time.Second // virtual seconds per experiment run

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig4a_DetectionONOS reproduces Fig. 4a: ONOS detection-time
// CDFs for k ∈ {2,4,6} secondaries and m ∈ {0,2} faulty controllers.
// Paper shape: detection time grows with k; m=2 shifts p95 97ms → 129ms.
func BenchmarkFig4a_DetectionONOS(b *testing.B) {
	for _, c := range []struct{ k, m int }{{2, 0}, {4, 0}, {6, 0}, {6, 2}} {
		b.Run(fmt.Sprintf("k=%d,m=%d", c.k, c.m), func(b *testing.B) {
			var res *experiment.DetectionResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Detection(experiment.DetectionConfig{
					Kind: jury.ONOS, K: c.k, M: c.m,
					BaseRate: 1500, PeakRate: 5500,
					Duration: benchDur, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(res.Detections.Percentile(50)), "p50_ms")
			b.ReportMetric(ms(res.Detections.Percentile(95)), "p95_ms")
			b.ReportMetric(float64(res.Decided), "validated")
		})
	}
}

// BenchmarkFig4b_DetectionONOSRates reproduces Fig. 4b: detection time
// rises with the PACKET_IN rate (k=6, m=0).
func BenchmarkFig4b_DetectionONOSRates(b *testing.B) {
	for _, rate := range []float64{500, 3000, 5500} {
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			var res *experiment.DetectionResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Detection(experiment.DetectionConfig{
					Kind: jury.ONOS, K: 6,
					BaseRate: rate, PeakRate: rate,
					Duration: benchDur, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(res.Detections.Percentile(50)), "p50_ms")
			b.ReportMetric(ms(res.Detections.Percentile(95)), "p95_ms")
		})
	}
}

// BenchmarkFig4c_DetectionODL reproduces Fig. 4c: ODL detection-time CDFs
// — roughly 5× slower than ONOS, ~500ms (k=6,m=0) → ~700ms (m=2) in the
// paper.
func BenchmarkFig4c_DetectionODL(b *testing.B) {
	for _, c := range []struct{ k, m int }{{2, 0}, {4, 0}, {6, 0}, {6, 2}} {
		b.Run(fmt.Sprintf("k=%d,m=%d", c.k, c.m), func(b *testing.B) {
			var res *experiment.DetectionResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Detection(experiment.DetectionConfig{
					Kind: jury.ODL, K: c.k, M: c.m,
					BaseRate: 120, PeakRate: 120,
					Timeout:  5 * time.Second,
					Duration: benchDur, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(res.Detections.Percentile(50)), "p50_ms")
			b.ReportMetric(ms(res.Detections.Percentile(95)), "p95_ms")
		})
	}
}

// BenchmarkFig4d_BenignTraces reproduces Fig. 4d: detection times and the
// false-positive rate on the three benign trace models with k=6, m=2.
// Paper: 0.35% false positives across all three traces.
func BenchmarkFig4d_BenignTraces(b *testing.B) {
	for _, name := range []string{"LBNL", "UNIV", "SMIA"} {
		b.Run(name, func(b *testing.B) {
			var res *experiment.DetectionResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Detection(experiment.DetectionConfig{
					Kind: jury.ONOS, K: 6, M: 2,
					Trace:    name,
					Timeout:  130 * time.Millisecond,
					Duration: benchDur, Seed: 13,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.FPRate*100, "fp_pct")
			b.ReportMetric(ms(res.Detections.Percentile(95)), "p95_ms")
			b.ReportMetric(float64(res.Decided), "validated")
		})
	}
}

// BenchmarkFig4e_CbenchCollapse reproduces Fig. 4e: sustained Cbench
// bursts drive the controller's FLOW_MOD throughput toward zero while the
// bursty PACKET_IN rate stays high.
func BenchmarkFig4e_CbenchCollapse(b *testing.B) {
	var res *experiment.CbenchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Cbench(12000, 20*time.Second, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	var peakPin, earlyFM, lateFM float64
	for i := range res.Seconds {
		if res.PacketIns[i] > peakPin {
			peakPin = res.PacketIns[i]
		}
		if res.Seconds[i] < 5 && res.FlowMods[i] > earlyFM {
			earlyFM = res.FlowMods[i]
		}
		if res.Seconds[i] >= 15 {
			lateFM += res.FlowMods[i]
		}
	}
	lateFM /= 5
	b.ReportMetric(peakPin, "peak_packetin_per_s")
	b.ReportMetric(earlyFM, "early_flowmod_per_s")
	b.ReportMetric(lateFM, "late_flowmod_per_s") // collapses toward zero
}

// BenchmarkFig4f_ThroughputONOS reproduces Fig. 4f: FLOW_MOD throughput
// tracks the PACKET_IN rate and saturates around 5K/s; clustering costs
// <8% at n=7.
func BenchmarkFig4f_ThroughputONOS(b *testing.B) {
	for _, n := range []int{1, 3, 5, 7} {
		for _, rate := range []float64{3000, 7500} {
			b.Run(fmt.Sprintf("n=%d/rate=%.0f", n, rate), func(b *testing.B) {
				var pt experiment.ThroughputPoint
				for i := 0; i < b.N; i++ {
					var err error
					pt, err = experiment.Throughput(jury.ONOS, n, -1, rate, benchDur, 42)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pt.FlowMods, "flowmod_per_s")
				b.ReportMetric(pt.PacketIns, "packetin_per_s")
			})
		}
	}
}

// BenchmarkFig4g_ThroughputODL reproduces Fig. 4g: strong consistency
// collapses ODL's throughput with cluster size (~800/s at n=1 down to
// ~140/s at n=7 in the paper).
func BenchmarkFig4g_ThroughputODL(b *testing.B) {
	for _, n := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pt experiment.ThroughputPoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = experiment.Throughput(jury.ODL, n, -1, 1000, benchDur, 42)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.FlowMods, "flowmod_per_s")
		})
	}
}

// BenchmarkFig4h_ThroughputJury reproduces Fig. 4h: JURY's impact on the
// n=7 ONOS cluster's FLOW_MOD throughput — <11% drop at k=6 in the paper.
func BenchmarkFig4h_ThroughputJury(b *testing.B) {
	base, err := experiment.Throughput(jury.ONOS, 7, -1, 8000, benchDur, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var pt experiment.ThroughputPoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = experiment.Throughput(jury.ONOS, 7, k, 8000, benchDur, 42)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.FlowMods, "flowmod_per_s")
			b.ReportMetric((base.FlowMods-pt.FlowMods)/base.FlowMods*100, "drop_pct")
		})
	}
}

// BenchmarkFig4i_Decapsulation reproduces Fig. 4i: the decapsulation
// overhead JURY's ODL path pays per replicated PACKET_IN. The paper
// reports 80% of packets under 150µs; the modeled distribution is
// reported here, and BenchmarkDecapsulationCodec measures the real cost
// of this implementation's codec.
func BenchmarkFig4i_Decapsulation(b *testing.B) {
	for _, rate := range []float64{100, 300, 500} {
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			var d interface {
				Percentile(float64) time.Duration
				FractionBelow(time.Duration) float64
			}
			for i := 0; i < b.N; i++ {
				dist, err := experiment.Decapsulation(rate, benchDur, 7)
				if err != nil {
					b.Fatal(err)
				}
				d = &dist
			}
			b.ReportMetric(float64(d.Percentile(80))/float64(time.Microsecond), "p80_us")
			b.ReportMetric(d.FractionBelow(150*time.Microsecond)*100, "under150us_pct")
		})
	}
}

// BenchmarkDecapsulationCodec measures the real wall-clock cost of
// decapsulating a doubly encapsulated PACKET_IN with this repository's
// OpenFlow codec (the paper's ~150µs is JVM-era; report ns/op here).
func BenchmarkDecapsulationCodec(b *testing.B) {
	inner := &openflow.PacketIn{
		InPort: 3,
		Data:   openflow.TCPPacket(topo.HostMAC(1), topo.HostMAC(2), topo.HostIP(1), topo.HostIP(2), 1234, 80, 0x02, 64),
	}
	frame := openflow.EncapsulatePacketIn(inner, openflow.MAC{0xEE})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := openflow.DecapsulatePacketIn(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyValidation reproduces the §VII-B2(3) table: response
// validation cost against 100 / 1K / 10K policies scales linearly with
// the paper's linear-scan engine (paper: 200µs / 1.2ms / 11.2ms on their
// testbed).
func BenchmarkPolicyValidation(b *testing.B) {
	in := policy.Input{
		Kind:  trigger.External,
		Cache: store.FlowsDB,
		Op:    store.OpCreate,
		Key:   "of:0000000000000001/abc",
		Value: `{"dpid":1}`,
	}
	for _, n := range []int{100, 1000, 10000} {
		policies := syntheticPolicies(n)
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			eng, err := policy.New(policies)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Check(in)
			}
		})
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			eng, err := policy.NewIndexed(policies)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Check(in)
			}
		})
	}
}

func syntheticPolicies(n int) []policy.Policy {
	caches := []string{"LinksDB", "EdgesDB", "HostDB", "ArpDB"}
	ops := []string{"create", "update", "delete"}
	out := make([]policy.Policy, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, policy.Policy{
			Name:       fmt.Sprintf("p%d", i),
			Controller: fmt.Sprintf("%d", i%7+1),
			Cache:      caches[i%len(caches)],
			Operation:  ops[i%len(ops)],
			Entry:      fmt.Sprintf("10.%d.*,*", i%250),
		})
	}
	return out
}

// BenchmarkReplicationOverhead reproduces the §VII-B2(1) accounting: JURY
// traffic (trigger replication + validator stream) as a share of
// inter-controller store traffic for k ∈ {2,4,6} (paper: 8.8% / 14.6% /
// 19.6% of a 142 Mbps Hazelcast stream at 5.5K PACKET_IN/s).
func BenchmarkReplicationOverhead(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var res experiment.OverheadResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Overhead(jury.ONOS, 7, k, 4000, benchDur, 11)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.InterControllerMbps, "intercontroller_mbps")
			b.ReportMetric(res.JuryReplicationMbps+res.JuryValidatorMbps, "jury_mbps")
			b.ReportMetric(res.JuryShareOfControlPct, "jury_share_pct")
		})
	}
}

// BenchmarkPacketOutThroughput reproduces the §VII-B1 aside: the
// PACKET_OUT fast path saturates far above the FLOW_MOD pipeline (~220K/s
// vs ~5K/s in the paper).
func BenchmarkPacketOutThroughput(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		var err error
		rate, err = experiment.PacketOutThroughput(300000, 2*time.Second, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rate, "packetout_per_s")
}

// BenchmarkFaultDetection reproduces the §VII-A1 detection experiment as a
// benchmark: time to detect each reproducible catalog fault at n=7, k=6.
func BenchmarkFaultDetection(b *testing.B) {
	// Reuse the integration-test scenarios through the façade: inject the
	// canonical T1/T2 faults and report the alarm latency.
	kinds := []string{"database-locking", "flowmod-drop", "undesirable-flowmod"}
	for _, kind := range kinds {
		b.Run(kind, func(b *testing.B) {
			var detect time.Duration
			for i := 0; i < b.N; i++ {
				d, err := detectOnce(kind, int64(100+i))
				if err != nil {
					b.Fatal(err)
				}
				detect = d
			}
			b.ReportMetric(ms(detect), "detection_ms")
		})
	}
}

func detectOnce(kind string, seed int64) (time.Duration, error) {
	sim, err := jury.New(jury.Config{
		Seed: seed, Kind: jury.ONOS, ClusterSize: 7, EnableJury: true, K: 6,
	})
	if err != nil {
		return 0, err
	}
	sim.Boot()
	target := sim.Controller(1)
	switch kind {
	case "database-locking":
		faults.InjectDatabaseLocking(target)
		dpid := target.Governed()[0]
		sw, _ := sim.Fabric.Switch(dpid)
		target.ConnectSwitch(dpid, sw.HandleControllerMessage)
	case "flowmod-drop":
		faults.InjectFlowModDrop(target, 1)
	case "undesirable-flowmod":
		faults.InjectUndesirableFlowMod(target)
	}
	until := sim.Now() + 4*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(5 * time.Second); err != nil {
		return 0, err
	}
	alarms := sim.Validator().Alarms()
	if len(alarms) == 0 {
		return 0, fmt.Errorf("%s not detected", kind)
	}
	return alarms[0].DetectionTime, nil
}

// BenchmarkConsensusStateAware ablates the state-aware consensus (§IV-C A,
// DESIGN.md decision 2): with it disabled, transient state asynchrony in
// the eventually consistent cluster converts into false alarms.
func BenchmarkConsensusStateAware(b *testing.B) {
	run := func(b *testing.B, disable bool) float64 {
		var fp float64
		for i := 0; i < b.N; i++ {
			sim, err := jury.New(jury.Config{
				Seed: 17, Kind: jury.ONOS, ClusterSize: 7, EnableJury: true, K: 6,
				NoStateAware: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim.Boot()
			until := sim.Now() + benchDur
			sim.Driver.Start(workload.ConstantRate(150), until)
			sim.Driver.StartChurn(500*time.Millisecond, 2*time.Second, until)
			if err := sim.Run(benchDur + time.Second); err != nil {
				b.Fatal(err)
			}
			fp = sim.Validator().FalsePositiveRate() * 100
		}
		return fp
	}
	b.Run("state-aware", func(b *testing.B) {
		b.ReportMetric(run(b, false), "fp_pct")
	})
	b.Run("ablated", func(b *testing.B) {
		b.ReportMetric(run(b, true), "fp_pct")
	})
}

// BenchmarkAdaptiveTimeout ablates the adaptive validation deadline
// (paper future work §VIII-1, DESIGN.md decision 6): internal triggers
// decide at the deadline, so tracking recent consensus latency cuts their
// detection tail.
func BenchmarkAdaptiveTimeout(b *testing.B) {
	run := func(b *testing.B, adaptive bool) float64 {
		var p99 float64
		for i := 0; i < b.N; i++ {
			sim, err := jury.New(jury.Config{
				Seed: 15, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2,
				ValidationTimeout: 500 * time.Millisecond,
				AdaptiveTimeout:   adaptive,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim.Boot()
			until := sim.Now() + benchDur
			sim.Driver.Start(workload.ConstantRate(100), until)
			if err := sim.Run(benchDur + time.Second); err != nil {
				b.Fatal(err)
			}
			p99 = ms(sim.Validator().Detections.Percentile(99))
		}
		return p99
	}
	b.Run("fixed", func(b *testing.B) {
		b.ReportMetric(run(b, false), "p99_ms")
	})
	b.Run("adaptive", func(b *testing.B) {
		b.ReportMetric(run(b, true), "p99_ms")
	})
}

// BenchmarkStoreConsistency ablates the consistency engines (DESIGN.md
// decision 5): per-write commit latency of the eventual vs strong store
// at n=7, the root cause of the Fig. 4f vs 4g contrast.
func BenchmarkStoreConsistency(b *testing.B) {
	for _, consistency := range []store.Consistency{store.Eventual, store.Strong} {
		b.Run(consistency.String(), func(b *testing.B) {
			eng := simnet.NewEngine(1)
			cluster := store.NewCluster(eng, store.DefaultConfig(consistency))
			var nodes []*store.Node
			for i := 1; i <= 7; i++ {
				nodes = append(nodes, cluster.AddNode(store.NodeID(i)))
			}
			committed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes[0].Write(store.FlowsDB, store.OpCreate, fmt.Sprintf("k%d", i), "v", func() { committed++ })
			}
			if err := eng.RunUntilIdle(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if committed != b.N {
				b.Fatalf("committed %d of %d", committed, b.N)
			}
			// Virtual commit latency for the last write.
			b.ReportMetric(float64(eng.Now().Microseconds())/float64(b.N), "virtual_us_per_commit")
		})
	}
}

// BenchmarkEngineOverhead quantifies the discrete-event engine's real cost
// (DESIGN.md decision 1): events processed per wall-clock second.
func BenchmarkEngineOverhead(b *testing.B) {
	eng := simnet.NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, tick)
	if err := eng.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepThroughputONOS runs a small Fig. 4f-style campaign
// through the sweep orchestrator at default (GOMAXPROCS) parallelism.
// Wall time per iteration is what the -parallel knob shrinks on
// multi-core hosts; results stay bit-identical at any width.
func BenchmarkSweepThroughputONOS(b *testing.B) {
	var cfgs []experiment.ThroughputConfig
	for _, n := range []int{1, 3} {
		for _, rate := range []float64{1000, 3000} {
			cfgs = append(cfgs, experiment.ThroughputConfig{
				Kind: jury.ONOS, N: n, JuryK: -1, Offered: rate, Duration: 2 * time.Second,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.ThroughputBatch(context.Background(), cfgs,
			experiment.BatchOptions{RootSeed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(cfgs) {
			b.Fatalf("campaign returned %d of %d points", len(res), len(cfgs))
		}
	}
}

// BenchmarkShardScaling measures the sharded validation plane's Submit
// throughput at 1/2/4/8 shards (BENCH_shard.json, `make bench-shard`).
// The workload is the plane's volume driver: the tainted SecondaryExec
// stream from replicated execution (untainted cache updates ride the
// existing replication stream, Response.free). Each width reports
// submit_per_s — the plane's sustained capacity, computed as the measured
// per-response processing rate scaled by the partition factor
// triggers/bottleneck-shard-load, so the number is honest on any core
// count: on a single-CPU host the workers time-slice one core and the
// wall clock alone cannot show the parallelism, but the bottleneck
// shard's serial work — which is what gates a multi-core deployment —
// shrinks near-linearly with the shard count (FNV balance), and that is
// the scaling this benchmark certifies. partition_x is that factor
// directly (ideal: the shard count).
func BenchmarkShardScaling(b *testing.B) {
	const triggers = 4096
	members := cluster.NewMembership(cluster.AnyControllerOneMaster,
		[]store.NodeID{1, 2, 3}, []topo.DPID{1, 2})
	load := make([]core.Response, 0, 2*triggers)
	for i := 0; i < triggers; i++ {
		id := trigger.ID(fmt.Sprintf("τ%04d", i))
		at := time.Duration(i) * 50 * time.Microsecond
		for _, ctrl := range []store.NodeID{2, 3} {
			load = append(load, core.Response{
				Controller: ctrl, Primary: 1, Trigger: id,
				Kind: core.SecondaryExec, Tainted: true,
				Cache: store.LinksDB, Op: store.OpCreate,
				Key: "k", Value: "up", StateDigest: 9,
				At: at,
			})
			at += 10 * time.Microsecond
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			var capacity, partition float64
			for i := 0; i < b.N; i++ {
				p, err := shard.New(shard.Config{
					Shards:            n,
					Validator:         core.ValidatorConfig{K: 2, Timeout: 20 * time.Millisecond},
					Members:           members,
					TimeFromResponses: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				for _, r := range load {
					p.Submit(r)
				}
				p.Close()
				wall := time.Since(start)
				if got := p.Decided(); got != triggers {
					b.Fatalf("plane decided %d of %d triggers", got, triggers)
				}
				var bottleneck int64
				for s := 0; s < n; s++ {
					if d := p.ShardDecided(s); d > bottleneck {
						bottleneck = d
					}
				}
				partition = float64(triggers) / float64(bottleneck)
				capacity = float64(len(load)) / wall.Seconds() * partition
			}
			b.ReportMetric(capacity, "submit_per_s")
			b.ReportMetric(partition, "partition_x")
		})
	}
}

// BenchmarkOpenFlowCodec measures marshal+parse of a FLOW_MOD (substrate
// hot path).
func BenchmarkOpenFlowCodec(b *testing.B) {
	fm := &openflow.FlowMod{
		Match:    openflow.ExactSrcDst(topo.HostMAC(1), topo.HostMAC(2)),
		Priority: 10,
		Actions:  []openflow.Action{openflow.Output(3)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := fm.Marshal()
		if _, err := openflow.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
