package jury_test

import (
	"strings"
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/wire"
	"github.com/jurysdn/jury/internal/workload"
)

func TestReportSummarizesRun(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 21, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	start := sim.Now()
	until := start + 3*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	r := sim.Report(start, until)
	if r.FlowsInjected == 0 || r.PacketInRate == 0 || r.FlowModRate == 0 {
		t.Fatalf("report missing data-plane figures: %+v", r)
	}
	if r.Decided == 0 || r.Valid == 0 {
		t.Fatalf("report missing validation figures: %+v", r)
	}
	if r.InterControllerMbps <= 0 || r.JuryValidatorMbps <= 0 {
		t.Fatalf("report missing traffic figures: %+v", r)
	}
	text := r.String()
	for _, want := range []string{"flows=", "validated=", "detection p50="} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
	if cdf := sim.DetectionCDF(10); len(cdf) != 10 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
}

func TestActivePassiveMode(t *testing.T) {
	sim, err := jury.New(jury.Config{
		Seed:        23,
		Kind:        jury.ONOS,
		ClusterSize: 3,
		ClusterMode: cluster.ActivePassive,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All switches mastered by the single active controller.
	for _, sw := range sim.Topo.Switches() {
		if master, _ := sim.Members.Master(sw.DPID); master != store.NodeID(1) {
			t.Fatalf("switch %v mastered by C%d in active-passive", sw.DPID, master)
		}
	}
	sim.Boot()
	until := sim.Now() + 2*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.FlowMods.Total() == 0 {
		t.Fatal("active controller forwarded nothing")
	}
	// Failover to a passive replica keeps the network alive.
	sim.Controller(1).Crash()
	until = sim.Now() + 2*time.Second
	before := sim.FlowMods.Total()
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.FlowMods.Total() == before {
		t.Fatal("no forwarding after active controller crash")
	}
}

func TestPolicyXMLThroughFacade(t *testing.T) {
	doc := `<Policies>
  <Policy allow="No" name="fig3">
    <Controller id="*"/>
    <Action type="Internal"/>
    <Cache name="EdgesDB" entry="*,*" operation="*"/>
    <Destination value="*"/>
  </Policy>
</Policies>`
	policies, err := policy.ParseXML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := jury.New(jury.Config{
		Seed: 25, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2,
		Policies: policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	// An administrator proactively rewrites a host's attachment point —
	// exactly what the Fig. 3 policy forbids.
	sim.Controller(2).AdminWriteCache(store.EdgesDB, store.OpUpdate, "00:00:00:00:00:01", `{"dpid":9}`)
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range sim.Validator().Alarms() {
		if strings.Contains(a.Reason, "fig3") && a.Offender == store.NodeID(2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Fig. 3 policy did not fire; alarms=%v", sim.Validator().Alarms())
	}
}

func TestIndexedPoliciesBehaveIdentically(t *testing.T) {
	policies := []policy.Policy{{Name: "p", Trigger: "internal", Cache: "EdgesDB"}}
	run := func(indexed bool) int64 {
		sim, err := jury.New(jury.Config{
			Seed: 27, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2,
			Policies: policies, IndexedPolicies: indexed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Boot()
		sim.Controller(1).AdminWriteCache(store.EdgesDB, store.OpUpdate, "k", "v")
		if err := sim.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.Validator().Faults()
	}
	if a, b := run(false), run(true); a != b || a == 0 {
		t.Fatalf("linear=%d indexed=%d", a, b)
	}
}

func TestRESTInstallThroughFacade(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 29, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	target := sim.Controller(1)
	dpid := target.Governed()[0]
	rule := controller.FlowRule{
		DPID:     dpid,
		Match:    openflow.MatchAll(),
		Priority: 50,
		Actions:  nil, // drop rule
	}
	if err := sim.InstallFlowREST(1, rule); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// The rule reached the store and the switch, and the REST trigger was
	// validated without alarms.
	found := false
	for _, key := range target.Node().Keys(store.FlowsDB) {
		v, _ := target.Node().Get(store.FlowsDB, key)
		r, err := controller.DecodeFlowRule(v)
		if err == nil && r.Priority == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("REST rule missing from FlowsDB")
	}
	sw, _ := sim.Fabric.Switch(dpid)
	swFound := false
	for _, e := range sw.Table() {
		if e.Priority == 50 {
			swFound = true
		}
	}
	if !swFound {
		t.Fatal("REST rule not installed on the switch")
	}
	if sim.Validator().Faults() != 0 {
		t.Fatalf("benign REST install raised alarms: %v", sim.Validator().Alarms())
	}
	if sim.Validator().Decided() == 0 {
		t.Fatal("REST trigger not validated")
	}
}

// TestServeValidatorFacade spins the out-of-band validator service up via
// the public facade and validates one complement over real TCP.
func TestServeValidatorFacade(t *testing.T) {
	srv, err := jury.ServeValidator("127.0.0.1:0", jury.ValidatorServiceConfig{
		ClusterSize:       3,
		K:                 2,
		Switches:          4,
		ValidationTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	send := func(ctrl store.NodeID, kind core.ResponseKind, tainted bool) {
		t.Helper()
		if err := c.Send(core.Response{
			Controller: ctrl,
			Primary:    1,
			Trigger:    "τ-facade",
			Kind:       kind,
			Tainted:    tainted,
			Cache:      store.LinksDB,
			Op:         store.OpCreate,
			Key:        "k",
			Value:      "up",
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(1, core.CacheUpdate, false)
	send(2, core.SecondaryExec, true)
	send(3, core.SecondaryExec, true)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := srv.Stats(); st.Decided == 1 {
			if st.Valid != 1 {
				t.Fatalf("stats = %+v, want 1 valid", st)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("validator never decided the complement")
}
