// Command faulthunt reproduces the detection experiment of §VII-A1: it
// walks JURY through the paper's fault catalog — the real ONOS/ODL bugs of
// §III-B, the three synthetic faults, and the appendix faults — injecting
// each into a 7-node cluster with full replication (k=6) and reporting
// whether and how fast the validator caught it.
package main

import (
	"fmt"
	"log"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/workload"
)

// scenario wires one catalog fault into a fresh simulation.
type scenario struct {
	kind  faults.Kind
	class faults.Class
	setup func(sim *jury.Simulation) *faults.Fault
	// wants is the fault class the validator should report.
	wants []core.FaultClass
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// must aborts the hunt on scenario-setup errors: a failed REST install
// means the scenario never exercised the fault it was built for.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func scenarios() []scenario {
	return []scenario{
		{
			kind: faults.ONOSDatabaseLocking, class: faults.ClassT1,
			setup: func(sim *jury.Simulation) *faults.Fault {
				target := sim.Controller(1)
				f := faults.InjectDatabaseLocking(target)
				// Reconnect a governed switch: its FEATURES_REPLY is the
				// trigger whose cache write fails.
				dpid := target.Governed()[0]
				sw, _ := sim.Fabric.Switch(dpid)
				target.ConnectSwitch(dpid, sw.HandleControllerMessage)
				return f
			},
			wants: []core.FaultClass{core.FaultOmission},
		},
		{
			kind: faults.ONOSMasterElection, class: faults.ClassT1,
			setup: func(sim *jury.Simulation) *faults.Fault {
				// The liveness master of a cross-governed link reboots
				// with a lower election ID and stops tracking liveness.
				target := sim.Controller(7)
				f := faults.InjectMasterElection(target)
				flapLinkOf(sim, target, 2*time.Second)
				return f
			},
			wants: []core.FaultClass{core.FaultOmission, core.FaultValue},
		},
		{
			kind: faults.ODLFlowModDrop, class: faults.ClassT2,
			setup: func(sim *jury.Simulation) *faults.Fault {
				return faults.InjectFlowModDrop(sim.Controller(3), 1)
			},
			wants: []core.FaultClass{core.FaultMissingNetwork},
		},
		{
			kind: faults.ODLIncorrectFlowMod, class: faults.ClassT3,
			setup: func(sim *jury.Simulation) *faults.Fault {
				target := sim.Controller(2)
				dpid := target.Governed()[0]
				sw, _ := sim.Fabric.Switch(dpid)
				f := faults.InjectIncorrectFlowMod(target, sw)
				f.Fire()
				return f
			},
			wants: []core.FaultClass{core.FaultPolicy},
		},
		{
			kind: faults.LinkFailure, class: faults.ClassT1,
			setup: func(sim *jury.Simulation) *faults.Fault {
				target := sim.Controller(4)
				f := faults.InjectLinkFailure(target)
				flapLinkOf(sim, target, 2*time.Second)
				return f
			},
			wants: []core.FaultClass{core.FaultValue},
		},
		{
			kind: faults.UndesirableFlowMod, class: faults.ClassT2,
			setup: func(sim *jury.Simulation) *faults.Fault {
				return faults.InjectUndesirableFlowMod(sim.Controller(5))
			},
			wants: []core.FaultClass{core.FaultInconsistent},
		},
		{
			kind: faults.FaultyProactiveAction, class: faults.ClassT3,
			setup: func(sim *jury.Simulation) *faults.Fault {
				links := sim.Topo.Links()
				key := controller.LinkKey(links[0].Src, links[0].Dst)
				f := faults.InjectFaultyProactiveAction(sim.Controller(6), key)
				f.Fire()
				return f
			},
			wants: []core.FaultClass{core.FaultPolicy},
		},
		{
			kind: faults.FlowDeletionFailure, class: faults.ClassT1,
			setup: func(sim *jury.Simulation) *faults.Fault {
				target := sim.Controller(1)
				f := faults.InjectFlowDeletionFailure(target)
				// REST-install a rule, then REST-delete it: the delete is
				// silently dropped by the faulty controller.
				dpid := target.Governed()[0]
				rule := controller.FlowRule{
					DPID: dpid, Priority: 99,
					Command: uint16(0), // add
				}
				must(sim.System.InstallFlowREST(target.ID(), dpid, rule))
				del := rule
				del.Command = 3 // delete
				sim.Engine.Schedule(500*time.Millisecond, func() {
					must(sim.System.InstallFlowREST(target.ID(), dpid, del))
				})
				return f
			},
			wants: []core.FaultClass{core.FaultOmission},
		},
		{
			kind: faults.FlowInstantiationFailure, class: faults.ClassT2,
			setup: func(sim *jury.Simulation) *faults.Fault {
				target := sim.Controller(2)
				f := faults.InjectFlowInstantiationFailure(target)
				dpid := target.Governed()[0]
				rule := controller.FlowRule{DPID: dpid, Priority: 77}
				must(sim.System.InstallFlowREST(target.ID(), dpid, rule))
				return f
			},
			wants: []core.FaultClass{core.FaultMissingNetwork},
		},
		{
			kind: faults.Crash, class: faults.ClassCrash,
			setup: func(sim *jury.Simulation) *faults.Fault {
				f := faults.InjectCrash(sim.Controller(3))
				sim.Engine.Schedule(time.Second, f.Fire)
				return f
			},
			// Crashes surface as response omissions (§III-B); mastership
			// failover may momentarily produce inconsistent views too.
			wants: []core.FaultClass{core.FaultOmission, core.FaultValue, core.FaultMissingNetwork},
		},
	}
}

func flapLinkOf(sim *jury.Simulation, target *controller.Controller, at time.Duration) {
	for _, l := range sim.Topo.Links() {
		if m, ok := sim.Members.LinkLivenessMaster(l.Src.DPID, l.Dst.DPID); ok && m == target.ID() {
			src := l.Src
			sim.Fabric.SetLinkDown(src, true)
			sim.Engine.Schedule(at, func() { sim.Fabric.SetLinkDown(src, false) })
			return
		}
	}
}

func run() error {
	fmt.Println("== JURY fault hunt: the §VII-A1 detection experiment (n=7, k=6) ==")
	policies := []policy.Policy{
		{Name: "no-proactive-topology-changes", Trigger: "internal", Cache: "LinksDB"},
		{Name: "match-field-hierarchy", Cache: "FlowsDB", RequireMatchHierarchy: true},
	}
	detected := 0
	var detectionTimes metrics.Distribution
	for i, sc := range scenarios() {
		sim, err := jury.New(jury.Config{
			Seed:        int64(100 + i),
			Kind:        jury.ONOS,
			ClusterSize: 7,
			EnableJury:  true,
			K:           6,
			Policies:    policies,
		})
		if err != nil {
			return err
		}
		sim.Boot()
		fault := sc.setup(sim)
		until := sim.Now() + 6*time.Second
		sim.Driver.Start(workload.ConstantRate(60), until)
		if err := sim.Run(7 * time.Second); err != nil {
			return err
		}
		var hit *core.Result
		for _, a := range sim.Validator().Alarms() {
			for _, want := range sc.wants {
				if a.Fault == want && hit == nil {
					a := a
					hit = &a
				}
			}
		}
		status := "MISSED"
		if hit != nil {
			detected++
			detectionTimes.Add(hit.DetectionTime)
			status = fmt.Sprintf("detected as %-15s offender=C%d in %8v", hit.Fault, hit.Offender, hit.DetectionTime.Round(time.Microsecond))
		}
		fmt.Printf("  [%s] %-28s (%s, injections=%d): %s\n", sc.class, sc.kind, realness(sc.kind), fault.Injections(), status)
	}
	fmt.Printf("detected %d/%d faults; detection time p50=%v max=%v\n",
		detected, len(scenarios()), detectionTimes.Percentile(50), detectionTimes.Max())
	if detected < len(scenarios()) {
		return fmt.Errorf("missed faults")
	}
	return nil
}

func realness(kind faults.Kind) string {
	for _, s := range faults.Scenarios() {
		if s.Kind == kind {
			if s.Real {
				return "real bug"
			}
			return "synthetic"
		}
	}
	return "?"
}
