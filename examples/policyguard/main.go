// Command policyguard demonstrates JURY's policy framework (§V): T3 faults
// write consistent-but-wrong entries to cache and network, so no amount of
// replica consensus can flag them — only administrator policies can. The
// example loads the paper's Fig. 3 policy from its XML form plus the
// match-field-hierarchy policy, fires both T3 faults from the catalog, and
// shows that (a) the policies catch them, and (b) without policies they
// sail through undetected.
package main

import (
	"fmt"
	"log"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/policy"
)

// policyXML is the administrator policy file: the Fig. 3 example extended
// to LinksDB, plus the match-hierarchy constraint used against the ODL
// incorrect-FLOW_MOD fault (§VII-A1(4)).
const policyXML = `<Policies>
  <Policy allow="No" name="no-proactive-topology-changes">
    <Controller id="*"/>
    <Action type="Internal"/>
    <Cache name="LinksDB" entry="*,*" operation="*"/>
    <Destination value="*"/>
  </Policy>
  <Policy allow="No" name="no-proactive-edge-changes">
    <Controller id="*"/>
    <Action type="Internal"/>
    <Cache name="EdgesDB" entry="*,*" operation="*"/>
    <Destination value="*"/>
  </Policy>
  <Policy allow="No" name="match-field-hierarchy">
    <Controller id="*"/>
    <Action type="*"/>
    <Cache name="FlowsDB" entry="*,*" operation="*" matchHierarchy="required"/>
    <Destination value="*"/>
  </Policy>
</Policies>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	policies, err := policy.ParseXML([]byte(policyXML))
	if err != nil {
		return fmt.Errorf("parse policy file: %w", err)
	}
	fmt.Printf("== JURY policy guard: %d policies loaded ==\n", len(policies))

	withPolicies, err := fireT3Faults(policies)
	if err != nil {
		return err
	}
	withoutPolicies, err := fireT3Faults(nil)
	if err != nil {
		return err
	}

	fmt.Printf("\nwith policies:    %d policy alarms\n", len(withPolicies))
	for _, a := range withPolicies {
		fmt.Printf("  C%d: %s (detected in %v)\n", a.Offender, a.Reason, a.DetectionTime)
	}
	fmt.Printf("without policies: %d policy alarms — T3 faults are invisible to consensus alone (§III-B)\n",
		len(withoutPolicies))
	if len(withPolicies) < 2 || len(withoutPolicies) != 0 {
		return fmt.Errorf("unexpected outcome: %d with, %d without", len(withPolicies), len(withoutPolicies))
	}
	fmt.Println("OK")
	return nil
}

// fireT3Faults boots a cluster, fires the two T3 catalog faults, and
// returns the policy alarms raised.
func fireT3Faults(policies []policy.Policy) ([]core.Result, error) {
	sim, err := jury.New(jury.Config{
		Seed:        7,
		Kind:        jury.ONOS,
		ClusterSize: 5,
		EnableJury:  true,
		K:           4,
		Policies:    policies,
	})
	if err != nil {
		return nil, err
	}
	sim.Boot()

	// T3 #1: an application proactively marks a healthy link down — the
	// cache and network stay mutually consistent, just wrong.
	links := sim.Topo.Links()
	key := controller.LinkKey(links[3].Src, links[3].Dst)
	proactive := faults.InjectFaultyProactiveAction(sim.Controller(2), key)
	proactive.Fire()

	// T3 #2: the administrator installs a flow whose match violates the
	// OpenFlow 1.0 field hierarchy; the permissive switch accepts it.
	target := sim.Controller(3)
	dpid := target.Governed()[0]
	sw, _ := sim.Fabric.Switch(dpid)
	incorrect := faults.InjectIncorrectFlowMod(target, sw)
	incorrect.Fire()

	// T3 faults need no data-plane traffic at all: their triggers are
	// internal, and only the cache-event stream reaches the validator.
	if err := sim.Run(2 * time.Second); err != nil {
		return nil, err
	}
	var alarms []core.Result
	for _, a := range sim.Validator().Alarms() {
		if a.Fault == core.FaultPolicy {
			alarms = append(alarms, a)
		} else {
			fmt.Printf("  (other alarm: %s C%d trig=%s %s)\n", a.Fault, a.Offender, a.Trigger, a.Reason)
		}
	}
	return alarms, nil
}
