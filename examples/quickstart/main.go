// Command quickstart boots a 3-node JURY-enhanced ONOS-like cluster on the
// 24-switch linear topology, drives benign traffic, injects one real fault
// from the paper (the ONOS database-locking bug of §III-B), and shows the
// validator detecting it with precise attribution.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/faults"
	"github.com/jurysdn/jury/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	_ = os.Stdout
}

func run() error {
	sim, err := jury.New(jury.Config{
		Seed:        1,
		Kind:        jury.ONOS,
		ClusterSize: 3,
		EnableJury:  true,
		K:           2,
	})
	if err != nil {
		return err
	}

	fmt.Println("== JURY quickstart ==")
	fmt.Printf("cluster: n=%d (%s), k=%d, validation timeout %v\n",
		sim.Config.ClusterSize, sim.Config.Kind, sim.Config.K, sim.Config.ValidationTimeout)

	boot := sim.Boot()
	fmt.Printf("boot: topology discovered and hosts learned in %v (virtual)\n", boot)

	// Print alarms as the validator raises them.
	sim.Validator().OnResult = func(r core.Result) {
		if r.Verdict == core.VerdictFault {
			fmt.Printf("  ALARM [%v] %s fault at C%d: %s (trigger %s, detected in %v)\n",
				r.DecidedAt, r.Fault, r.Offender, r.Reason, r.Trigger, r.DetectionTime)
		}
	}

	// Benign traffic for a while.
	until := sim.Now() + 3*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(3 * time.Second); err != nil {
		return err
	}
	v := sim.Validator()
	fmt.Printf("benign phase: %d controller actions validated, %d alarms\n",
		v.Decided(), v.Faults())

	// Inject the ONOS database-locking fault on C1 and reconnect one of
	// its switches: the FEATURES_REPLY trigger's SwitchDB write will fail
	// at the primary while the replicated executions succeed.
	target := sim.Controller(1)
	fault := faults.InjectDatabaseLocking(target)
	fmt.Printf("injecting: %s\n", fault)
	dpid := target.Governed()[0]
	sw, _ := sim.Fabric.Switch(dpid)
	target.ConnectSwitch(dpid, sw.HandleControllerMessage)

	until = sim.Now() + 2*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(2 * time.Second); err != nil {
		return err
	}

	fmt.Printf("total: %d actions validated, %d valid, %d alarms, detection p50=%v p95=%v\n",
		v.Decided(), v.Valid(), v.Faults(),
		v.DetectionsExternal.Percentile(50), v.DetectionsExternal.Percentile(95))
	if v.Faults() == 0 {
		return fmt.Errorf("expected the injected fault to be detected")
	}
	fmt.Println("OK: injected fault detected")
	return nil
}
