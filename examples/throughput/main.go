// Command throughput runs the cluster-throughput experiments of §VII-B1
// live: the FLOW_MOD-vs-PACKET_IN curves for vanilla ONOS (Fig. 4f) and
// vanilla ODL (Fig. 4g), the impact of JURY's replication on ONOS
// (Fig. 4h), and the Cbench overload collapse (Fig. 4e) — printing the
// series the paper plots.
package main

import (
	"fmt"
	"log"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Fig. 4f: FLOW_MOD vs PACKET_IN, vanilla ONOS ==")
	if err := throughputSweep(jury.ONOS, []int{1, 3, 5, 7}, []float64{1000, 3000, 5000, 7500, 10000}); err != nil {
		return err
	}
	fmt.Println("\n== Fig. 4g: FLOW_MOD vs PACKET_IN, vanilla ODL ==")
	if err := throughputSweep(jury.ODL, []int{1, 3, 5, 7}, []float64{200, 400, 600, 800, 1000}); err != nil {
		return err
	}
	fmt.Println("\n== Fig. 4h: JURY-enhanced ONOS, n=7 ==")
	if err := jurySweep(); err != nil {
		return err
	}
	fmt.Println("\n== Fig. 4e: Cbench bursts overwhelm a controller ==")
	return cbenchCollapse()
}

func measure(cfg jury.Config, rate float64, dur time.Duration) (pin, fm float64, err error) {
	sim, err := jury.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	sim.Boot()
	start := sim.Now()
	until := start + dur
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(rate), until)
	if err := sim.Run(dur + time.Second); err != nil {
		return 0, 0, err
	}
	return sim.PacketIns.MeanRate(start, until), sim.FlowMods.MeanRate(start, until), nil
}

func throughputSweep(kind jury.ControllerKind, sizes []int, rates []float64) error {
	header := []string{"n \\ offered"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("%.0f/s", r))
	}
	var rows [][]string
	for _, n := range sizes {
		row := []string{fmt.Sprintf("n=%d", n)}
		for _, rate := range rates {
			_, fm, err := measure(jury.Config{Seed: 42, Kind: kind, ClusterSize: n}, rate, 6*time.Second)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", fm))
		}
		rows = append(rows, row)
	}
	fmt.Print(metrics.FormatTable(header, rows))
	return nil
}

func jurySweep() error {
	rates := []float64{4000, 8000}
	header := []string{"config"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("%.0f/s", r))
	}
	var rows [][]string
	configs := []struct {
		label string
		jury  bool
		k     int
	}{
		{"vanilla n=7", false, 0},
		{"jury k=2", true, 2},
		{"jury k=4", true, 4},
		{"jury k=6", true, 6},
	}
	var base []float64
	for ci, c := range configs {
		row := []string{c.label}
		for ri, rate := range rates {
			_, fm, err := measure(jury.Config{
				Seed: 42, Kind: jury.ONOS, ClusterSize: 7,
				EnableJury: c.jury, K: c.k,
			}, rate, 6*time.Second)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", fm))
			if ci == 0 {
				base = append(base, fm)
			} else if ri == len(rates)-1 {
				drop := (base[ri] - fm) / base[ri] * 100
				row[len(row)-1] += fmt.Sprintf(" (-%.1f%%)", drop)
			}
		}
		rows = append(rows, row)
	}
	fmt.Print(metrics.FormatTable(header, rows))
	fmt.Println("paper: <11% FLOW_MOD throughput drop at k=6 (§VII-B1)")
	return nil
}

func cbenchCollapse() error {
	// A single controller with a bounded ingress queue and overload
	// service inflation (the memory-bloat model) faces Cbench bursts.
	profile := controller.ONOSProfile()
	profile.QueueCap = 8192
	profile.InflateAt = 2048
	profile.InflateSlope = 0.006
	sim, err := jury.New(jury.Config{
		Seed:        42,
		Kind:        jury.ONOS,
		Profile:     &profile,
		ClusterSize: 1,
		Topology:    jury.SingleSwitch,
	})
	if err != nil {
		return err
	}
	sim.Boot()
	cb := workload.NewCbench(sim.Engine, sim.Fabric)
	cb.BurstSize = 12000
	cb.Period = time.Second
	cb.Spread = 900 * time.Millisecond
	start := sim.Now()
	cb.Start(start + 20*time.Second)
	if err := sim.Run(21 * time.Second); err != nil {
		return err
	}
	fmt.Println("second  PACKET_IN/s  FLOW_MOD/s  backlog")
	pins := sim.PacketIns.Rates()
	fms := sim.FlowMods.Rates()
	for i := int(start / time.Second); i < len(pins); i++ {
		var fm float64
		if i < len(fms) {
			fm = fms[i]
		}
		fmt.Printf("%6d  %11.0f  %10.0f\n", i-int(start/time.Second), pins[i], fm)
	}
	fmt.Println("paper: the FLOW_MOD rate lags the bursty PACKET_IN rate and falls toward zero (Fig. 4e)")
	return nil
}
