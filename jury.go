// Package jury is the public façade of the JURY reproduction: it assembles
// a simulated clustered SDN deployment (data plane, distributed store,
// controller replicas) with or without JURY's replicator/module/validator
// instrumentation, drives workloads against it, and exposes the metrics
// behind every figure of the paper's evaluation.
//
// Quickstart:
//
//	sim, err := jury.New(jury.Config{
//		Kind:        jury.ONOS,
//		ClusterSize: 3,
//		EnableJury:  true,
//		K:           2,
//	})
//	if err != nil { ... }
//	sim.Boot()
//	sim.Driver.Start(workload.ConstantRate(200), sim.Now()+10*time.Second)
//	sim.Run(10 * time.Second)
//	fmt.Println(sim.Validator().Decided(), "actions validated")
package jury

import (
	"fmt"
	"time"

	"github.com/jurysdn/jury/internal/cluster"
	"github.com/jurysdn/jury/internal/controller"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/dataplane"
	"github.com/jurysdn/jury/internal/metrics"
	"github.com/jurysdn/jury/internal/obs"
	"github.com/jurysdn/jury/internal/openflow"
	"github.com/jurysdn/jury/internal/policy"
	"github.com/jurysdn/jury/internal/simnet"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/topo"
	"github.com/jurysdn/jury/internal/trigger"
	"github.com/jurysdn/jury/internal/wire"
	"github.com/jurysdn/jury/internal/workload"
)

// Simulation is a fully wired deployment.
type Simulation struct {
	Config Config

	Engine      *simnet.Engine
	Topo        *topo.Topology
	Fabric      *dataplane.Fabric
	Members     *cluster.Membership
	Store       *store.Cluster
	Controllers []*controller.Controller
	System      *core.System // nil when JURY is disabled
	Driver      *workload.Driver

	// PacketIns counts southbound PACKET_INs over time (per-second bins).
	PacketIns *metrics.Series
	// FlowMods counts FLOW_MODs actually emitted southbound.
	FlowMods *metrics.Series
	// PacketOuts counts PACKET_OUTs emitted southbound.
	PacketOuts *metrics.Series
	// PacketInKinds histograms southbound PACKET_INs by payload
	// ethertype (diagnostics).
	PacketInKinds map[string]int64
	// mastershipChatter accounts the Hazelcast mastership request/notify
	// traffic secondaries exchange with the primary when switches connect
	// to every controller (§VII-B2 reports ~4 Mbps per secondary at a
	// 5.5K PACKET_IN/s load, i.e. ~95 bytes per PACKET_IN per secondary).
	mastershipChatter int64

	policyEngine *policy.Engine
}

// New assembles a simulation from the configuration.
func New(cfg Config) (*Simulation, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := simnet.NewEngine(cfg.Seed)
	if cfg.EnableTracing && cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(eng.Now)
	}
	cfg.Tracer.InstrumentMetrics(cfg.Metrics)
	if cfg.FlightRing != 0 && cfg.FlightRecorder == nil {
		cfg.FlightRecorder = obs.NewRecorder(cfg.FlightRing)
	}

	top := cfg.CustomTopology
	if top == nil {
		switch cfg.Topology {
		case ThreeTier:
			top, err = topo.ThreeTier(8, 4, 2, 2)
		case SingleSwitch:
			top, err = topo.Single(24)
		default:
			top, err = topo.Linear(24)
		}
		if err != nil {
			return nil, fmt.Errorf("jury: build topology: %w", err)
		}
	}

	fabric := dataplane.NewFabric(eng, top)
	profile := cfg.profile()

	var dpids []topo.DPID
	for _, sw := range top.Switches() {
		dpids = append(dpids, sw.DPID)
	}
	var memberIDs []store.NodeID
	for i := 1; i <= cfg.ClusterSize; i++ {
		memberIDs = append(memberIDs, store.NodeID(i))
	}
	members := cluster.NewMembership(cfg.clusterMode(), memberIDs, dpids)
	members.InstrumentMetrics(cfg.Metrics)

	storeCluster := store.NewCluster(eng, cfg.storeConfig(profile))

	sim := &Simulation{
		Config:        cfg,
		Engine:        eng,
		Topo:          top,
		Fabric:        fabric,
		Members:       members,
		Store:         storeCluster,
		PacketIns:     metrics.NewSeries(time.Second),
		FlowMods:      metrics.NewSeries(time.Second),
		PacketOuts:    metrics.NewSeries(time.Second),
		PacketInKinds: make(map[string]int64),
	}

	for _, id := range memberIDs {
		node := storeCluster.AddNode(id)
		ctrl := controller.New(eng, id, profile, node, members)
		ctrl.OnEgress = sim.observeEgress
		sim.Controllers = append(sim.Controllers, ctrl)
	}

	if cfg.EnableJury {
		if err := sim.wireJury(); err != nil {
			return nil, err
		}
	} else {
		sim.wireVanilla()
	}

	// Southbound connections: every controller connects to every switch
	// in ANY_CONTROLLER_ONE_MASTER; only the master connects in
	// SINGLE_CONTROLLER.
	for _, sw := range fabric.Switches() {
		dpid := sw.DPID()
		downlink := sw.HandleControllerMessage
		for _, ctrl := range sim.Controllers {
			if cfg.clusterMode() == cluster.SingleController && !members.IsMaster(ctrl.ID(), dpid) {
				continue
			}
			ctrl.ConnectSwitch(dpid, downlink)
		}
	}
	for _, ctrl := range sim.Controllers {
		ctrl.Start()
	}
	sim.Driver = workload.NewDriver(eng, fabric)
	return sim, nil
}

func (s *Simulation) wireJury() error {
	cfg := s.Config
	sysCfg := core.SystemConfig{
		K:    cfg.K,
		Mode: cfg.replicationMode(),
		Validator: core.ValidatorConfig{
			Timeout:      cfg.ValidationTimeout,
			Adaptive:     cfg.AdaptiveTimeout,
			NoStateAware: cfg.NoStateAware,
			Shards:       cfg.Shards,
		},
		RelayAll: cfg.RelayAll,
		Metrics:  cfg.Metrics,
		Tracer:   cfg.Tracer,
		Recorder: cfg.FlightRecorder,
	}
	s.System = core.NewSystem(s.Engine, s.Members, sysCfg)
	for _, ctrl := range s.Controllers {
		s.System.AttachController(ctrl)
	}
	if len(cfg.Policies) > 0 {
		var (
			eng *policy.Engine
			err error
		)
		if cfg.IndexedPolicies {
			eng, err = policy.NewIndexed(cfg.Policies)
		} else {
			eng, err = policy.New(cfg.Policies)
		}
		if err != nil {
			return fmt.Errorf("jury: compile policies: %w", err)
		}
		s.policyEngine = eng
		s.System.Validator().Policy = s.policyFunc
	}
	for _, sw := range s.Fabric.Switches() {
		rep, err := s.System.AttachSwitch(sw)
		if err != nil {
			return err
		}
		// Count PACKET_INs at the replicator boundary.
		inner := rep.HandleFromSwitch
		counted := s.countingSendUp(inner)
		sw.SetSendUp(counted)
	}
	return nil
}

func (s *Simulation) wireVanilla() {
	for _, sw := range s.Fabric.Switches() {
		dpid := sw.DPID()
		sw.SetSendUp(s.countingSendUp(func(msg openflow.Message) {
			master, ok := s.Members.Master(dpid)
			if !ok {
				return
			}
			if ctrl := s.controllerByID(master); ctrl != nil {
				ctrl.HandleSouthbound(dpid, msg, nil)
			}
		}))
	}
}

func (s *Simulation) countingSendUp(next func(openflow.Message)) func(openflow.Message) {
	return func(msg openflow.Message) {
		if pin, ok := msg.(*openflow.PacketIn); ok {
			s.PacketIns.Record(s.Engine.Now())
			if pf, err := openflow.ParsePacket(pin.Data, pin.InPort); err == nil {
				s.PacketInKinds[fmt.Sprintf("0x%04x", pf.EthType)]++
			}
			if s.Config.clusterMode() == cluster.AnyControllerOneMaster && s.Config.ClusterSize > 1 {
				const chatterPerSecondary = 95 // bytes, see field comment
				s.mastershipChatter += chatterPerSecondary * int64(s.Config.ClusterSize-1)
			}
		}
		next(msg)
	}
}

func (s *Simulation) observeEgress(_ topo.DPID, msg openflow.Message, _ *trigger.Context) {
	switch msg.Type() {
	case openflow.TypeFlowMod:
		s.FlowMods.Record(s.Engine.Now())
	case openflow.TypePacketOut:
		s.PacketOuts.Record(s.Engine.Now())
	}
}

func (s *Simulation) controllerByID(id store.NodeID) *controller.Controller {
	for _, c := range s.Controllers {
		if c.ID() == id {
			return c
		}
	}
	return nil
}

// policyFunc adapts the policy engine to the validator's POLICY_CHECK.
func (s *Simulation) policyFunc(kind trigger.Kind, primary store.NodeID, r core.Response) (string, bool) {
	if !r.IsCache() {
		return "", false
	}
	in := policy.Input{
		Kind:        kind,
		Controller:  primary,
		Cache:       r.Cache,
		Op:          r.Op,
		Key:         r.Key,
		Value:       r.Value,
		Destination: policy.DestAny,
	}
	if r.Cache == store.FlowsDB {
		if rule, err := controller.DecodeFlowRule(r.Value); err == nil {
			if s.Members.IsMaster(primary, rule.DPID) {
				in.Destination = policy.DestLocal
			} else {
				in.Destination = policy.DestRemote
			}
		}
	}
	return s.policyEngine.Check(in)
}

// InstallFlowREST submits a northbound flow-install request to the target
// controller. With JURY enabled, the request is intercepted and replicated
// like any other external trigger (§II-A2); without JURY it goes straight
// to the controller.
func (s *Simulation) InstallFlowREST(target int, rule controller.FlowRule) error {
	ctrl := s.Controller(target)
	if ctrl == nil {
		return fmt.Errorf("jury: unknown controller %d", target)
	}
	if s.System != nil {
		return s.System.InstallFlowREST(ctrl.ID(), rule.DPID, rule)
	}
	ctrl.InstallFlowREST(rule, nil)
	return nil
}

// MastershipChatterBytes returns the modeled mastership request/notify
// traffic between secondaries and primaries (§VII-B2).
func (s *Simulation) MastershipChatterBytes() int64 { return s.mastershipChatter }

// Metrics returns the observability registry shared by every component of
// this simulation, for /metrics exposition or direct reads.
func (s *Simulation) Metrics() *obs.Registry { return s.Config.Metrics }

// Tracer returns the trigger tracer (nil when tracing is disabled).
func (s *Simulation) Tracer() *obs.Tracer { return s.Config.Tracer }

// FlightRecorder returns the validator's flight recorder (nil when
// flight recording is disabled).
func (s *Simulation) FlightRecorder() *obs.Recorder { return s.Config.FlightRecorder }

// Validator returns the out-of-band validator (nil when JURY is off).
func (s *Simulation) Validator() *core.Validator {
	if s.System == nil {
		return nil
	}
	return s.System.Validator()
}

// Controller returns the controller with the given 1-based ID.
func (s *Simulation) Controller(id int) *controller.Controller {
	return s.controllerByID(store.NodeID(id))
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.Engine.Now() }

// Run advances the simulation by d of virtual time.
func (s *Simulation) Run(d time.Duration) error {
	return s.Engine.Run(s.Engine.Now() + d)
}

// Boot runs the warmup phase: the OpenFlow handshakes complete, LLDP
// discovers the full topology, and then hosts ARP each other so attachment
// points are learned on known edge ports. Returns the boot duration.
func (s *Simulation) Boot() time.Duration {
	start := s.Engine.Now()
	profile := s.Config.profile()
	// Two discovery periods: emit and learn, so LinksDB is populated
	// before host traffic appears.
	if err := s.Run(2*profile.LLDPPeriod + 100*time.Millisecond); err != nil {
		return s.Engine.Now() - start
	}
	s.Driver.Warmup()
	if err := s.Run(profile.LLDPPeriod + 400*time.Millisecond); err != nil {
		return s.Engine.Now() - start
	}
	return s.Engine.Now() - start
}

// ServeValidator runs the out-of-band validator as a standalone TCP
// service on addr (the separate validator host of Fig. 2): controller
// modules connect as wire clients and stream responses as JSON lines,
// and every validation result (or only alarms) is pushed back. The
// returned server owns background goroutines; call Close. The underlying
// wire bridge is resilient: framing is bounded, idle peers are
// heartbeated and reaped, and accept errors back off — see the
// "Resilient wire bridge" section of DESIGN.md.
func ServeValidator(addr string, cfg ValidatorServiceConfig) (*wire.Server, error) {
	cfg = cfg.withDefaults()
	ids := make([]store.NodeID, 0, cfg.ClusterSize)
	for i := 1; i <= cfg.ClusterSize; i++ {
		ids = append(ids, store.NodeID(i))
	}
	ds := make([]topo.DPID, 0, cfg.Switches)
	for i := 1; i <= cfg.Switches; i++ {
		ds = append(ds, topo.DPID(i))
	}
	return wire.Serve(addr, wire.ServerConfig{
		Validator: core.ValidatorConfig{
			K:        cfg.K,
			Timeout:  cfg.ValidationTimeout,
			Adaptive: cfg.AdaptiveTimeout,
		},
		Codec:          cfg.Codec,
		Shards:         cfg.Shards,
		QueueDepth:     cfg.QueueDepth,
		Members:        ids,
		Switches:       ds,
		AlarmsOnly:     cfg.AlarmsOnly,
		Tracing:        cfg.Tracing,
		FlightRing:     cfg.FlightRing,
		OnFlightDump:   cfg.OnFlightDump,
		MaxLineBytes:   cfg.MaxLineBytes,
		HeartbeatEvery: cfg.HeartbeatEvery,
		IdleTimeout:    cfg.IdleTimeout,
		Metrics:        cfg.Metrics,
	})
}
