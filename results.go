package jury

import (
	"fmt"
	"strings"
	"time"

	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/metrics"
)

// Report is a consolidated snapshot of a simulation's measurements — the
// quantities the paper's evaluation reports (§VII).
type Report struct {
	// Window is the interval the rate figures cover.
	WindowStart, WindowEnd time.Duration

	// Data plane.
	FlowsInjected  int64
	PacketInRate   float64
	FlowModRate    float64
	PacketOutRate  float64
	HostDeliveries uint64
	IngressDrops   uint64

	// Validation (zero values when JURY is disabled).
	Decided          int64
	Valid            int64
	Alarms           int64
	NonDeterministic int64
	Timeouts         int64
	FalsePositivePct float64
	DetectionP50     time.Duration
	DetectionP95     time.Duration
	DetectionP99     time.Duration

	// Network overhead (§VII-B2), in Mbps over the window.
	InterControllerMbps float64
	MastershipMbps      float64
	JuryReplicationMbps float64
	JuryValidatorMbps   float64

	// AlarmList holds the retained alarms.
	AlarmList []core.Result
}

// Report summarizes the run between from and to (virtual times). Use
// sim.Now() bounds around your measurement window.
func (s *Simulation) Report(from, to time.Duration) Report {
	r := Report{
		WindowStart:    from,
		WindowEnd:      to,
		FlowsInjected:  s.Driver.Flows(),
		PacketInRate:   s.PacketIns.MeanRate(from, to),
		FlowModRate:    s.FlowMods.MeanRate(from, to),
		PacketOutRate:  s.PacketOuts.MeanRate(from, to),
		HostDeliveries: s.Fabric.Delivered(),
	}
	for _, c := range s.Controllers {
		r.IngressDrops += c.IngressDrops()
	}
	secs := (to - from).Seconds()
	if secs > 0 {
		r.InterControllerMbps = float64(s.Store.ReplicationBytes()) * 8 / secs / 1e6
		r.MastershipMbps = float64(s.MastershipChatterBytes()) * 8 / secs / 1e6
	}
	if v := s.Validator(); v != nil {
		r.Decided = v.Decided()
		r.Valid = v.Valid()
		r.Alarms = v.Faults()
		r.NonDeterministic = v.NonDeterministic()
		r.Timeouts = v.Timeouts()
		r.FalsePositivePct = v.FalsePositiveRate() * 100
		r.DetectionP50 = v.DetectionsExternal.Percentile(50)
		r.DetectionP95 = v.DetectionsExternal.Percentile(95)
		r.DetectionP99 = v.DetectionsExternal.Percentile(99)
		r.AlarmList = v.Alarms()
		if secs > 0 {
			r.JuryReplicationMbps = float64(s.System.ReplicationBytes()) * 8 / secs / 1e6
			r.JuryValidatorMbps = float64(s.System.ValidatorBytes()) * 8 / secs / 1e6
		}
	}
	return r
}

// DetectionCDF returns the external-trigger detection-time CDF (the
// series of Figs. 4a-4d), or nil when JURY is disabled.
func (s *Simulation) DetectionCDF(points int) []metrics.CDFPoint {
	v := s.Validator()
	if v == nil {
		return nil
	}
	return v.DetectionsExternal.CDF(points)
}

// String renders the report as the jurysim-style text block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flows=%d packet_in=%.0f/s flow_mod=%.0f/s packet_out=%.0f/s drops=%d\n",
		r.FlowsInjected, r.PacketInRate, r.FlowModRate, r.PacketOutRate, r.IngressDrops)
	if r.Decided > 0 {
		fmt.Fprintf(&b, "validated=%d valid=%d alarms=%d nondet=%d timeouts=%d fp=%.2f%%\n",
			r.Decided, r.Valid, r.Alarms, r.NonDeterministic, r.Timeouts, r.FalsePositivePct)
		fmt.Fprintf(&b, "detection p50=%v p95=%v p99=%v\n", r.DetectionP50, r.DetectionP95, r.DetectionP99)
	}
	fmt.Fprintf(&b, "traffic inter-controller=%.1fMbps jury-replication=%.1fMbps jury-validator=%.1fMbps",
		r.InterControllerMbps, r.JuryReplicationMbps, r.JuryValidatorMbps)
	return b.String()
}
