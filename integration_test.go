package jury_test

import (
	"context"
	"testing"
	"time"

	jury "github.com/jurysdn/jury"
	"github.com/jurysdn/jury/internal/core"
	"github.com/jurysdn/jury/internal/experiment"
	"github.com/jurysdn/jury/internal/store"
	"github.com/jurysdn/jury/internal/workload"
)

func TestVanillaONOSEndToEnd(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 1, Kind: jury.ONOS, ClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 5*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.Driver.Flows() == 0 {
		t.Fatal("no flows injected")
	}
	if sim.FlowMods.Total() == 0 {
		t.Fatal("no FLOW_MODs emitted")
	}
	if sim.Fabric.Delivered() == 0 {
		t.Fatal("no frames delivered to hosts")
	}
	// Reactive forwarding installed real rules on real switches.
	rules := 0
	for _, sw := range sim.Fabric.Switches() {
		rules += len(sw.Table())
	}
	if rules == 0 {
		t.Fatal("no flow entries installed")
	}
}

func TestJuryBenignRunHasNoFalsePositives(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 2, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 5*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	v := sim.Validator()
	if v.Decided() == 0 {
		t.Fatal("validator decided nothing")
	}
	if fp := v.FalsePositiveRate(); fp > 0.01 {
		for i, a := range v.Alarms() {
			if i >= 5 {
				break
			}
			t.Logf("alarm: %s offender=C%d %s", a.Fault, a.Offender, a.Reason)
		}
		t.Fatalf("false positive rate %.2f%% on benign run", fp*100)
	}
}

func TestJuryODLEndToEnd(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 3, Kind: jury.ODL, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 5*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(50), until)
	if err := sim.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	v := sim.Validator()
	if v.Decided() == 0 {
		t.Fatal("validator decided nothing")
	}
	// ODL replicas receive doubly encapsulated PACKET_INs and must have
	// paid decapsulation cost (Fig. 4i path).
	decaps := 0
	for i := 1; i <= 3; i++ {
		if m, ok := sim.System.Module(store.NodeID(i)); ok {
			decaps += m.DecapTimes.Count()
		}
	}
	if decaps == 0 {
		t.Fatal("no decapsulations on the ODL path")
	}
	if fp := v.FalsePositiveRate(); fp > 0.02 {
		t.Fatalf("false positive rate %.2f%%", fp*100)
	}
}

func TestThroughputSaturationShape(t *testing.T) {
	measure := func(kind jury.ControllerKind, n int, rate float64) float64 {
		sim, err := jury.New(jury.Config{Seed: 42, Kind: kind, ClusterSize: n})
		if err != nil {
			t.Fatal(err)
		}
		sim.Boot()
		start := sim.Now()
		until := start + 5*time.Second
		sim.Driver.LocalPairs = true
		sim.Driver.Start(workload.ConstantRate(rate), until)
		if err := sim.Run(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.FlowMods.MeanRate(start, until)
	}
	// ONOS: linear below saturation, saturates ~4.9K (Fig. 4f).
	low := measure(jury.ONOS, 3, 2000)
	if low < 1700 || low > 2100 {
		t.Fatalf("ONOS below saturation: %.0f FLOW_MOD/s at 2K offered", low)
	}
	high := measure(jury.ONOS, 3, 9000)
	if high < 4000 || high > 5500 {
		t.Fatalf("ONOS saturation: %.0f FLOW_MOD/s, want ~4.9K", high)
	}
	// ODL collapses with cluster size (Fig. 4g): n=5 caps ~222/s.
	odl := measure(jury.ODL, 5, 800)
	if odl < 150 || odl > 300 {
		t.Fatalf("ODL n=5 saturation: %.0f FLOW_MOD/s, want ~222", odl)
	}
}

func TestJuryThroughputOverheadSmall(t *testing.T) {
	measure := func(enable bool, k int) float64 {
		sim, err := jury.New(jury.Config{Seed: 5, Kind: jury.ONOS, ClusterSize: 7, EnableJury: enable, K: k})
		if err != nil {
			t.Fatal(err)
		}
		sim.Boot()
		start := sim.Now()
		until := start + 5*time.Second
		sim.Driver.LocalPairs = true
		sim.Driver.Start(workload.ConstantRate(4000), until)
		if err := sim.Run(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.FlowMods.MeanRate(start, until)
	}
	base := measure(false, 0)
	withJury := measure(true, 6)
	drop := (base - withJury) / base
	if drop > 0.15 {
		t.Fatalf("JURY throughput drop %.1f%% (base %.0f, jury %.0f), paper reports <11%%", drop*100, base, withJury)
	}
}

func TestDetectionTimeGrowsWithK(t *testing.T) {
	p95 := func(k int) time.Duration {
		sim, err := jury.New(jury.Config{
			Seed: 7, Kind: jury.ONOS, ClusterSize: 7, EnableJury: true, K: k,
			ValidationTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Boot()
		until := sim.Now() + 6*time.Second
		sim.Driver.LocalPairs = true
		sim.Driver.Start(workload.SquareBurst(1500, 5500, 2*time.Second, 0.35), until)
		if err := sim.Run(7 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.Validator().DetectionsExternal.Percentile(95)
	}
	k2, k6 := p95(2), p95(6)
	if k6 <= k2 {
		t.Fatalf("p95 detection: k=2 %v vs k=6 %v — must grow with k (Fig. 4a)", k2, k6)
	}
}

func TestCrashFailoverKeepsClusterWorking(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 9, Kind: jury.ONOS, ClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	governed := sim.Controller(2).Governed()
	if len(governed) == 0 {
		t.Fatal("C2 governs nothing")
	}
	sim.Controller(2).Crash()
	for _, d := range governed {
		if master, ok := sim.Members.Master(d); !ok || master == store.NodeID(2) {
			t.Fatalf("switch %v did not fail over", d)
		}
	}
	before := sim.FlowMods.Total()
	until := sim.Now() + 3*time.Second
	sim.Driver.Start(workload.ConstantRate(100), until)
	if err := sim.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.FlowMods.Total() == before {
		t.Fatal("no forwarding after failover")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := jury.New(jury.Config{ClusterSize: -1}); err == nil {
		t.Fatal("negative cluster size accepted")
	}
	if _, err := jury.New(jury.Config{ClusterSize: 3, EnableJury: true, K: 5}); err == nil {
		t.Fatal("k > n-1 accepted")
	}
	// Defaults fill in.
	sim, err := jury.New(jury.Config{EnableJury: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Config.ClusterSize != 7 || sim.Config.K != 6 {
		t.Fatalf("defaults = n%d k%d", sim.Config.ClusterSize, sim.Config.K)
	}
	if sim.Config.ValidationTimeout == 0 {
		t.Fatal("no default timeout")
	}
}

func TestTopologyOptions(t *testing.T) {
	for _, topoKind := range []jury.TopologyKind{jury.Linear24, jury.ThreeTier, jury.SingleSwitch} {
		sim, err := jury.New(jury.Config{Seed: 1, Topology: topoKind, ClusterSize: 3})
		if err != nil {
			t.Fatalf("topology %v: %v", topoKind, err)
		}
		sim.Boot()
		if sim.Topo.NumSwitches() == 0 {
			t.Fatalf("topology %v empty", topoKind)
		}
	}
}

func TestReplicationOverheadProportions(t *testing.T) {
	// §VII-B2: inter-controller (store) traffic must dominate JURY's
	// replication+validator traffic in a full-replication deployment.
	sim, err := jury.New(jury.Config{Seed: 11, Kind: jury.ONOS, ClusterSize: 7, EnableJury: true, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 5*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(2000), until)
	if err := sim.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	interController := sim.Store.ReplicationBytes()
	juryBytes := sim.System.ReplicationBytes() + sim.System.ValidatorBytes()
	if juryBytes == 0 || interController == 0 {
		t.Fatal("no traffic accounted")
	}
	if juryBytes >= interController {
		t.Fatalf("JURY traffic (%d B) should not dominate inter-controller traffic (%d B)", juryBytes, interController)
	}
}

func TestBenignTraceModelsLowFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep")
	}
	// Each trace runs as a parallel subtest through the sweep-backed
	// batch entry point. The point seed derives from RootSeed and the
	// point parameters — not from subtest scheduling — so results stay
	// identical at any -test.parallel width.
	for _, spec := range workload.Traces() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := experiment.DetectionBatch(context.Background(),
				[]experiment.DetectionConfig{{
					Kind: jury.ONOS, K: 6,
					Trace:    spec.Name,
					Duration: 10 * time.Second,
				}},
				experiment.BatchOptions{RootSeed: 13})
			if err != nil {
				t.Fatal(err)
			}
			r := res[0].Value
			if r.Decided < 100 {
				t.Fatalf("decided only %d", r.Decided)
			}
			if r.FPRate > 0.01 {
				t.Fatalf("%s: false positives %.2f%% (paper: 0.35%%)", spec.Name, r.FPRate*100)
			}
		})
	}
}

func TestAdaptiveTimeoutReducesDetectionLatency(t *testing.T) {
	run := func(adaptive bool) time.Duration {
		sim, err := jury.New(jury.Config{
			Seed: 15, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2,
			ValidationTimeout: 500 * time.Millisecond,
			AdaptiveTimeout:   adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Boot()
		until := sim.Now() + 5*time.Second
		sim.Driver.Start(workload.ConstantRate(100), until)
		if err := sim.Run(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.Validator().Detections.Percentile(99)
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive p99 %v should beat fixed-timeout p99 %v (timer-bound internal triggers decide sooner)", adaptive, fixed)
	}
}

func TestNonDeterministicActionsNotFlagged(t *testing.T) {
	// Sanity alias for the validator-level behaviour through the façade:
	// benign divergence between replicas must not produce faults. Covered
	// more precisely in internal/core; here we assert no faults leak
	// through under eventual-consistency churn.
	sim, err := jury.New(jury.Config{Seed: 17, Kind: jury.ONOS, ClusterSize: 5, EnableJury: true, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 4*time.Second
	sim.Driver.Start(workload.ConstantRate(150), until)
	sim.Driver.StartChurn(500*time.Millisecond, 2*time.Second, until)
	if err := sim.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fp := sim.Validator().FalsePositiveRate(); fp > 0.01 {
		t.Fatalf("churny benign run flagged %.2f%%", fp*100)
	}
}

func TestDetectionResultsCarryAttribution(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 19, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sawAttribution bool
	sim.Validator().OnResult = func(r core.Result) {
		if r.Trigger != "" && r.Responses > 0 {
			sawAttribution = true
		}
	}
	sim.Boot()
	until := sim.Now() + 2*time.Second
	sim.Driver.Start(workload.ConstantRate(50), until)
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !sawAttribution {
		t.Fatal("results carry no attribution")
	}
}

func TestJurySurvivesSecondaryCrashes(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 33, Kind: jury.ONOS, ClusterSize: 7, EnableJury: true, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 6*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(200), until)
	// Two secondaries fail-stop mid-run: the replicator must keep
	// choosing live secondaries and validation must continue.
	sim.Engine.Schedule(2*time.Second, func() { sim.Controller(6).Crash() })
	sim.Engine.Schedule(3*time.Second, func() { sim.Controller(7).Crash() })
	if err := sim.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	v := sim.Validator()
	if v.Decided() < 500 {
		t.Fatalf("validation stalled after crashes: decided=%d", v.Decided())
	}
	// Triggers in flight at crash time legitimately time out or flag the
	// dead nodes; afterwards the system settles. The bulk must be valid.
	if ratio := float64(v.Valid()) / float64(v.Decided()); ratio < 0.95 {
		t.Fatalf("valid ratio %.2f after crashes", ratio)
	}
	if v.Pending() > 2000 {
		t.Fatalf("validator leaking pending triggers: %d", v.Pending())
	}
}

func TestValidatorPendingBounded(t *testing.T) {
	sim, err := jury.New(jury.Config{Seed: 35, Kind: jury.ONOS, ClusterSize: 3, EnableJury: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.Boot()
	until := sim.Now() + 8*time.Second
	sim.Driver.LocalPairs = true
	sim.Driver.Start(workload.ConstantRate(1000), until)
	if err := sim.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Drain: with no new triggers, grace-period entries expire and the
	// pending map returns to (near) empty.
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p := sim.Validator().Pending(); p > 50 {
		t.Fatalf("pending after drain = %d", p)
	}
}
